//! Seeded protocol mutations for validating the model checker.
//!
//! A checker that has never caught a bug proves nothing. This module holds
//! a thread-local switch that arms exactly one deliberate protocol bug at a
//! time; the protocol crates (`awr_core`, `awr_storage`, `awr_rb`) consult
//! it at the mutated decision points, and `crates/check` asserts that the
//! explorer finds a counterexample for every armed mutation.
//!
//! The switch is thread-local because each simulated [`crate::World`] runs
//! on a single thread while `cargo test` runs many tests in parallel — a
//! process-global switch would leak mutations across unrelated tests.
//!
//! Only compiled with the `mutate` feature; production builds carry none of
//! these code paths.

use std::cell::Cell;

/// One deliberate protocol bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Drop the Property-1 floor clamp in `TransferCore::start_batch`: a
    /// transfer that would take the issuer below the RP-Integrity floor
    /// proceeds instead of degrading to a null transfer. Caught by the
    /// RP-Integrity audit invariant.
    DropFloorClamp,
    /// Skip the tag comparison when absorbing `RefreshAck` registers: the
    /// refresher adopts whatever the ack carries instead of
    /// strictly-newer-only, so a stale replier can roll a register's tag
    /// backwards. Caught by the tag-monotonicity invariant.
    SkipRefreshTagCheck,
    /// Reuse the previous RB sequence number when broadcasting: peers
    /// deduplicate the second broadcast as already-seen, so a transfer
    /// batch is silently swallowed. Caught by the join-liveness invariant
    /// (the transfer never completes and restrictions never converge).
    ReuseRbSeq,
    /// Disarm the weighted fast-path read check in `awr_storage`: a read
    /// returns after phase 1 off the max-tag repliers even when their
    /// cumulative weight is *not* a quorum, so a lone fresh replier can
    /// serve a value a concurrent write has not yet propagated to a
    /// quorum — a new/old inversion. Caught by the read-atomicity
    /// invariant.
    DisarmFastPathWeightCheck,
}

thread_local! {
    static ARMED: Cell<Option<Mutation>> = const { Cell::new(None) };
}

/// Arms `m` on this thread (replacing any previously armed mutation).
pub fn arm(m: Mutation) {
    ARMED.with(|a| a.set(Some(m)));
}

/// Disarms all mutations on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Is `m` armed on this thread?
pub fn armed(m: Mutation) -> bool {
    ARMED.with(|a| a.get()) == Some(m)
}

/// Runs `f` with `m` armed, disarming afterwards even on panic-free early
/// return paths.
pub fn with_mutation<R>(m: Mutation, f: impl FnOnce() -> R) -> R {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm();
        }
    }
    let _guard = Disarm;
    arm(m);
    f()
}
