//! A real-threads runtime for the same [`Actor`] trait.
//!
//! The discrete-event [`crate::World`] is the reference environment (it is
//! deterministic and supports adversaries), but wall-clock benchmarks want
//! actual parallelism. [`ThreadedSystem`] runs each actor on its own thread
//! connected by crossbeam channels. Message delivery is FIFO per link and
//! as fast as the OS allows; there is no virtual time and timers are not
//! supported (none of the paper's protocols need them).
//!
//! Crash/restart fault injection mirrors the DES: [`ThreadedSystem::kill`]
//! tears an actor's thread down and [`ThreadedSystem::restart`] rebuilds it
//! (typically from a durable store shared with the dead incarnation).
//! Because a thread cannot be killed mid-message, a kill is a stop marker:
//! messages already queued ahead of it are still processed, while messages
//! arriving during the downtime are discarded when the actor restarts —
//! a best-effort rendition of the DES drop-while-crashed rule.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, ActorId, Context, Effect, Message};
use crate::metrics::Metrics;

enum Envelope<M> {
    Msg { from: ActorId, msg: M },
    Stop,
}

type Channel<M> = (Sender<Envelope<M>>, Receiver<Envelope<M>>);
type Callback<'cb, M> = dyn FnMut(&mut dyn Actor<Msg = M>, &mut Context<'_, M>) + 'cb;

#[derive(Clone, Copy, Default)]
struct KindTally {
    count: u64,
    bytes: u64,
}

/// Per-link tally mirrored into [`Metrics::bytes_by_link`] and
/// [`Metrics::msgs_by_link`] on snapshot.
#[derive(Clone, Copy, Default)]
struct LinkTally {
    msgs: u64,
    bytes: u64,
}

/// Run-wide send accounting shared by every actor thread. Totals are
/// lock-free atomics updated per send; the per-kind and per-link maps take
/// a lock only when a thread exits and merges its local tallies.
#[derive(Default)]
struct SharedCounters {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    by_kind: Mutex<BTreeMap<&'static str, KindTally>>,
    by_link: Mutex<BTreeMap<(ActorId, ActorId), LinkTally>>,
    by_object: Mutex<BTreeMap<u64, KindTally>>,
    by_counter: Mutex<BTreeMap<&'static str, u64>>,
    by_sample: Mutex<BTreeMap<&'static str, BTreeMap<u64, u64>>>,
}

impl SharedCounters {
    fn record_totals(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn merge_kinds(
        &self,
        local: &BTreeMap<&'static str, KindTally>,
        links: &BTreeMap<(ActorId, ActorId), LinkTally>,
        objects: &BTreeMap<u64, KindTally>,
        counters: &BTreeMap<&'static str, u64>,
        samples: &BTreeMap<&'static str, BTreeMap<u64, u64>>,
    ) {
        let mut map = self.by_kind.lock().expect("metrics mutex poisoned");
        for (k, t) in local {
            let e = map.entry(k).or_default();
            e.count += t.count;
            e.bytes += t.bytes;
        }
        drop(map);
        let mut map = self.by_link.lock().expect("metrics mutex poisoned");
        for (l, t) in links {
            let e = map.entry(*l).or_default();
            e.msgs += t.msgs;
            e.bytes += t.bytes;
        }
        drop(map);
        let mut map = self.by_object.lock().expect("metrics mutex poisoned");
        for (o, t) in objects {
            let e = map.entry(*o).or_default();
            e.count += t.count;
            e.bytes += t.bytes;
        }
        drop(map);
        let mut map = self.by_counter.lock().expect("metrics mutex poisoned");
        for (k, v) in counters {
            *map.entry(k).or_insert(0) += v;
        }
        drop(map);
        let mut map = self.by_sample.lock().expect("metrics mutex poisoned");
        for (k, h) in samples {
            let e = map.entry(k).or_default();
            for (v, c) in h {
                *e.entry(*v).or_insert(0) += c;
            }
        }
    }

    /// One-off accounting for harness-injected messages (actor threads use
    /// the thread-local tallies instead; injection is rare enough that one
    /// lock per call is fine).
    fn record_one(
        &self,
        kind: &'static str,
        bytes: usize,
        object: Option<u64>,
        from: ActorId,
        to: ActorId,
    ) {
        self.record_totals(bytes);
        let mut map = self.by_kind.lock().expect("metrics mutex poisoned");
        let e = map.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes as u64;
        drop(map);
        let mut map = self.by_link.lock().expect("metrics mutex poisoned");
        let e = map.entry((from, to)).or_default();
        e.msgs += 1;
        e.bytes += bytes as u64;
        drop(map);
        if let Some(o) = object {
            let mut map = self.by_object.lock().expect("metrics mutex poisoned");
            let e = map.entry(o).or_default();
            e.count += 1;
            e.bytes += bytes as u64;
        }
    }
}

/// A cloneable handle onto a [`ThreadedSystem`] run's message and byte
/// accounting, usable before and after [`ThreadedSystem::shutdown`].
///
/// Totals ([`Metrics::messages_sent`], [`Metrics::bytes_sent`]) are live at
/// any time; the per-kind breakdowns are merged when each actor thread
/// exits, so they are complete once `shutdown` returns.
#[derive(Clone)]
pub struct ThreadedMetrics {
    shared: Arc<SharedCounters>,
}

impl ThreadedMetrics {
    /// Snapshots the counters into a [`Metrics`] (fields the threaded
    /// runtime does not track — virtual time, timers, link busy time —
    /// stay zero).
    pub fn snapshot(&self) -> Metrics {
        let mut m = Metrics {
            messages_sent: self.shared.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.shared.bytes_sent.load(Ordering::Relaxed),
            ..Metrics::default()
        };
        let map = self.shared.by_kind.lock().expect("metrics mutex poisoned");
        for (k, t) in map.iter() {
            m.sent_by_kind.insert(k, t.count);
            m.bytes_by_kind.insert(k, t.bytes);
        }
        drop(map);
        let map = self.shared.by_link.lock().expect("metrics mutex poisoned");
        for (l, t) in map.iter() {
            m.bytes_by_link.insert(*l, t.bytes);
            m.msgs_by_link.insert(*l, t.msgs);
        }
        drop(map);
        let map = self
            .shared
            .by_object
            .lock()
            .expect("metrics mutex poisoned");
        for (o, t) in map.iter() {
            m.bytes_by_object.insert(*o, t.bytes);
            m.msgs_by_object.insert(*o, t.count);
        }
        drop(map);
        m.counters = self
            .shared
            .by_counter
            .lock()
            .expect("metrics mutex poisoned")
            .clone();
        m.samples = self
            .shared
            .by_sample
            .lock()
            .expect("metrics mutex poisoned")
            .clone();
        m
    }
}

/// A running threaded actor system.
///
/// # Examples
///
/// ```
/// use awr_sim::{Actor, ActorId, Context, Message, ThreadedSystem};
///
/// #[derive(Clone, Debug)]
/// struct Inc(u64);
/// impl Message for Inc {}
///
/// struct Counter { total: u64 }
/// impl Actor for Counter {
///     type Msg = Inc;
///     fn on_message(&mut self, _f: ActorId, m: Inc, _c: &mut Context<'_, Inc>) {
///         self.total += m.0;
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let sys = ThreadedSystem::spawn(vec![Counter { total: 0 }], 1);
/// for _ in 0..100 { sys.inject(ActorId(0), ActorId(0), Inc(1)); }
/// let actors = sys.shutdown();
/// assert_eq!(actors[0].as_any().downcast_ref::<Counter>().unwrap().total, 100);
/// ```
pub struct ThreadedSystem<M: Message> {
    senders: Vec<Sender<Envelope<M>>>,
    handles: Vec<Option<JoinHandle<Parked<M>>>>,
    /// Actors joined by [`ThreadedSystem::kill`] and not yet restarted,
    /// kept (with their receiver, so the channel stays open and peers'
    /// cloned senders remain valid) until restart or shutdown.
    parked: Vec<Option<Parked<M>>>,
    counters: Arc<SharedCounters>,
    seed: u64,
}

/// What an actor thread yields on exit: the actor for inspection plus its
/// receiver, which keeps the channel alive across a downtime and lets
/// [`ThreadedSystem::restart`] drain (drop) whatever arrived while dead.
type Parked<M> = (Box<dyn Actor<Msg = M> + Send>, Receiver<Envelope<M>>);

/// Runs one actor on a fresh thread: `on_start`, then the delivery loop
/// until a stop marker, crash, or channel closure; merges the thread-local
/// tallies and returns the actor and its receiver on exit.
fn spawn_actor_thread<M: Message + Send>(
    i: usize,
    n: usize,
    seed: u64,
    mut actor: Box<dyn Actor<Msg = M> + Send>,
    rx: Receiver<Envelope<M>>,
    peer_senders: Vec<Sender<Envelope<M>>>,
    shared: Arc<SharedCounters>,
) -> JoinHandle<Parked<M>> {
    std::thread::spawn(move || {
        let self_id = ActorId(i);
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B9));
        let mut next_timer = 0u64;
        // Per-kind and per-link tallies stay thread-local and merge
        // into the shared maps once, on exit, to keep the send path
        // lock-free.
        let mut kinds: BTreeMap<&'static str, KindTally> = BTreeMap::new();
        let mut links: BTreeMap<(ActorId, ActorId), LinkTally> = BTreeMap::new();
        let mut objects: BTreeMap<u64, KindTally> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut samples: BTreeMap<&'static str, BTreeMap<u64, u64>> = BTreeMap::new();
        let mut run_cb = |actor: &mut Box<dyn Actor<Msg = M> + Send>, cb: &mut Callback<'_, M>| {
            let mut effects: Vec<Effect<M>> = Vec::new();
            {
                let mut ctx = Context {
                    now: crate::time::Time::ZERO,
                    self_id,
                    n_actors: n,
                    rng: &mut rng,
                    effects: &mut effects,
                    next_timer: &mut next_timer,
                };
                cb(actor.as_mut(), &mut ctx);
            }
            let mut crash = false;
            for e in effects {
                match e {
                    Effect::Send { to, msg } => {
                        let bytes = msg.wire_size();
                        shared.record_totals(bytes);
                        let t = kinds.entry(msg.kind()).or_default();
                        t.count += 1;
                        t.bytes += bytes as u64;
                        let l = links.entry((self_id, to)).or_default();
                        l.msgs += 1;
                        l.bytes += bytes as u64;
                        if let Some(o) = msg.object_key() {
                            let t = objects.entry(o).or_default();
                            t.count += 1;
                            t.bytes += bytes as u64;
                        }
                        // A send to a stopped peer is a dropped
                        // message, matching the crash model.
                        let _ = peer_senders[to.index()].send(Envelope::Msg { from: self_id, msg });
                    }
                    Effect::SetTimer { .. } | Effect::CancelTimer { .. } => {
                        // Timers are a DES-only facility.
                    }
                    Effect::CrashSelf => crash = true,
                    Effect::Counter { key, add } => {
                        *counters.entry(key).or_insert(0) += add;
                    }
                    Effect::Sample { key, value } => {
                        *samples.entry(key).or_default().entry(value).or_insert(0) += 1;
                    }
                }
            }
            crash
        };

        let mut crashed = run_cb(&mut actor, &mut |a, ctx| a.on_start(ctx));
        while !crashed {
            match rx.recv() {
                Ok(Envelope::Msg { from, msg }) => {
                    // Move the owned message into the (single)
                    // callback invocation instead of cloning it:
                    // for Arc-backed payloads the clone+drop pair
                    // is an avoidable hit on a refcount shared
                    // with every other actor thread (see
                    // docs/THREADED_NOTES.md).
                    let mut slot = Some(msg);
                    crashed = run_cb(&mut actor, &mut |a, ctx| {
                        a.on_message(from, slot.take().expect("delivered once"), ctx)
                    });
                }
                Ok(Envelope::Stop) | Err(_) => break,
            }
        }
        // Drain silently after crash/stop until Stop arrives so
        // senders never block (channels are unbounded anyway).
        shared.merge_kinds(&kinds, &links, &objects, &counters, &samples);
        (actor, rx)
    })
}

impl<M: Message + Send> ThreadedSystem<M> {
    /// Spawns one thread per actor. `on_start` runs on each thread before
    /// any delivery.
    pub fn spawn<A>(actors: Vec<A>, seed: u64) -> ThreadedSystem<M>
    where
        A: Actor<Msg = M> + Send,
    {
        let boxed: Vec<Box<dyn Actor<Msg = M> + Send>> = actors
            .into_iter()
            .map(|a| Box::new(a) as Box<dyn Actor<Msg = M> + Send>)
            .collect();
        Self::spawn_boxed(boxed, seed)
    }

    /// Spawns heterogeneous actors (e.g. servers and clients).
    pub fn spawn_boxed(
        actors: Vec<Box<dyn Actor<Msg = M> + Send>>,
        seed: u64,
    ) -> ThreadedSystem<M> {
        let n = actors.len();
        let channels: Vec<Channel<M>> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope<M>>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let counters = Arc::new(SharedCounters::default());

        let mut handles = Vec::with_capacity(n);
        let mut parked = Vec::with_capacity(n);
        for (i, (actor, (_, rx))) in actors.into_iter().zip(channels).enumerate() {
            handles.push(Some(spawn_actor_thread(
                i,
                n,
                seed,
                actor,
                rx,
                senders.clone(),
                Arc::clone(&counters),
            )));
            parked.push(None);
        }

        ThreadedSystem {
            senders,
            handles,
            parked,
            counters,
            seed,
        }
    }

    /// Tears down an actor's thread (fault injection). The stop marker is
    /// FIFO behind already-queued messages, so those are still processed;
    /// messages arriving *after* the kill are discarded when the actor is
    /// [`restart`](ThreadedSystem::restart)ed. The joined actor is parked
    /// so [`ThreadedSystem::shutdown`] still returns it if it never
    /// restarts. No-op if the actor is already down.
    pub fn kill(&mut self, a: ActorId) {
        let i = a.index();
        if let Some(handle) = self.handles[i].take() {
            let _ = self.senders[i].send(Envelope::Stop);
            self.parked[i] = Some(handle.join().expect("actor thread panicked"));
        }
    }

    /// Rebuilds a killed actor on a fresh thread, first discarding every
    /// message that arrived during the downtime (the crash model drops
    /// in-flight traffic to a dead actor). The replacement typically
    /// recovers its state from a durable store shared with the dead
    /// incarnation; its `on_start` runs before any delivery.
    ///
    /// # Panics
    ///
    /// Panics if the actor is still running.
    pub fn restart(&mut self, a: ActorId, actor: Box<dyn Actor<Msg = M> + Send>) {
        let i = a.index();
        assert!(
            self.handles[i].is_none(),
            "restart of a running actor {a}; kill it first"
        );
        let (_, rx) = self.parked[i].take().expect("killed actor was parked");
        while rx.try_recv().is_ok() {}
        self.handles[i] = Some(spawn_actor_thread(
            i,
            self.senders.len(),
            self.seed,
            actor,
            rx,
            self.senders.clone(),
            Arc::clone(&self.counters),
        ));
    }

    /// Whether the actor is currently torn down (killed, not restarted).
    pub fn is_down(&self, a: ActorId) -> bool {
        self.handles[a.index()].is_none()
    }

    /// Number of actors.
    pub fn n_actors(&self) -> usize {
        self.senders.len()
    }

    /// Injects a message as if sent by `from`.
    pub fn inject(&self, from: ActorId, to: ActorId, msg: M) {
        self.counters
            .record_one(msg.kind(), msg.wire_size(), msg.object_key(), from, to);
        let _ = self.senders[to.index()].send(Envelope::Msg { from, msg });
    }

    /// A cloneable handle onto this run's message/byte accounting. Keep it
    /// across [`ThreadedSystem::shutdown`] to read the final counters.
    pub fn metrics(&self) -> ThreadedMetrics {
        ThreadedMetrics {
            shared: Arc::clone(&self.counters),
        }
    }

    /// Stops all actors after their queued messages *before the stop marker*
    /// are processed, then joins and returns them for inspection.
    pub fn shutdown(self) -> Vec<Box<dyn Actor<Msg = M> + Send>> {
        for (s, h) in self.senders.iter().zip(&self.handles) {
            if h.is_some() {
                let _ = s.send(Envelope::Stop);
            }
        }
        self.handles
            .into_iter()
            .zip(self.parked)
            .map(|(h, p)| match h {
                Some(h) => h.join().expect("actor thread panicked").0,
                None => p.expect("killed actor was parked").0,
            })
            .collect()
    }
}

/// Convenience: downcasts a boxed actor returned by
/// [`ThreadedSystem::shutdown`].
pub fn downcast_actor<T: 'static, M: Message>(b: &dyn Actor<Msg = M>) -> Option<&T> {
    let any: &dyn Any = b.as_any();
    any.downcast_ref::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Context;

    #[derive(Clone, Debug)]
    enum M2 {
        Hit,
        Report,
        Count(u64),
    }
    impl Message for M2 {}

    struct CounterActor {
        hits: u64,
        reported: Option<u64>,
    }

    impl Actor for CounterActor {
        type Msg = M2;
        fn on_message(&mut self, from: ActorId, msg: M2, ctx: &mut Context<'_, M2>) {
            match msg {
                M2::Hit => self.hits += 1,
                M2::Report => ctx.send(from, M2::Count(self.hits)),
                M2::Count(c) => self.reported = Some(c),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn threaded_messages_flow() {
        let sys = ThreadedSystem::spawn(
            vec![
                CounterActor {
                    hits: 0,
                    reported: None,
                },
                CounterActor {
                    hits: 0,
                    reported: None,
                },
            ],
            9,
        );
        let metrics = sys.metrics();
        for _ in 0..1000 {
            sys.inject(ActorId(1), ActorId(0), M2::Hit);
        }
        // Ask actor 0 to report back to actor 1 (FIFO per channel ensures
        // the report question arrives after all hits).
        sys.inject(ActorId(1), ActorId(0), M2::Report);
        // Give the report time to land.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let actors = sys.shutdown();
        let a0 = downcast_actor::<CounterActor, M2>(actors[0].as_ref()).unwrap();
        assert_eq!(a0.hits, 1000);
        let a1 = downcast_actor::<CounterActor, M2>(actors[1].as_ref()).unwrap();
        assert_eq!(a1.reported, Some(1000));
        // 1001 injects + actor 0's Count reply are all byte-accounted.
        let m = metrics.snapshot();
        let per_msg = std::mem::size_of::<M2>() as u64;
        assert_eq!(m.messages_sent, 1002);
        assert_eq!(m.bytes_sent, 1002 * per_msg);
        assert_eq!(m.sent_of_kind("msg"), 1002);
        assert_eq!(m.bytes_of_kind("msg"), m.bytes_sent);
        // Per-link attribution: 1001 a1→a0 (injected), one a0→a1 reply.
        assert_eq!(m.bytes_on_link(ActorId(1), ActorId(0)), 1001 * per_msg);
        assert_eq!(m.bytes_on_link(ActorId(0), ActorId(1)), per_msg);
        assert_eq!(m.msgs_on_link(ActorId(1), ActorId(0)), 1001);
        assert_eq!(m.msgs_on_link(ActorId(0), ActorId(1)), 1);
    }

    #[test]
    fn kill_restart_drops_messages_while_down() {
        let mut sys = ThreadedSystem::spawn(
            vec![
                CounterActor {
                    hits: 0,
                    reported: None,
                },
                CounterActor {
                    hits: 0,
                    reported: None,
                },
            ],
            7,
        );
        for _ in 0..10 {
            sys.inject(ActorId(1), ActorId(0), M2::Hit);
        }
        // The stop marker is FIFO behind the 10 hits, so the dying
        // incarnation still processes them.
        sys.kill(ActorId(0));
        assert!(sys.is_down(ActorId(0)));
        // Traffic to a dead actor is dropped at restart.
        for _ in 0..5 {
            sys.inject(ActorId(1), ActorId(0), M2::Hit);
        }
        // The replacement carries "recovered" state in with it.
        sys.restart(
            ActorId(0),
            Box::new(CounterActor {
                hits: 40,
                reported: None,
            }),
        );
        assert!(!sys.is_down(ActorId(0)));
        for _ in 0..3 {
            sys.inject(ActorId(1), ActorId(0), M2::Hit);
        }
        sys.inject(ActorId(1), ActorId(0), M2::Report);
        std::thread::sleep(std::time::Duration::from_millis(100));
        let actors = sys.shutdown();
        let a1 = downcast_actor::<CounterActor, M2>(actors[1].as_ref()).unwrap();
        // 40 recovered + 3 post-restart; the 5 sent while down are gone.
        assert_eq!(a1.reported, Some(43));
    }

    #[test]
    fn kill_parks_actor_for_shutdown() {
        let mut sys = ThreadedSystem::spawn(
            vec![CounterActor {
                hits: 0,
                reported: None,
            }],
            3,
        );
        for _ in 0..3 {
            sys.inject(ActorId(0), ActorId(0), M2::Hit);
        }
        sys.kill(ActorId(0));
        sys.kill(ActorId(0)); // idempotent
        let actors = sys.shutdown();
        let a0 = downcast_actor::<CounterActor, M2>(actors[0].as_ref()).unwrap();
        assert_eq!(a0.hits, 3);
    }

    #[test]
    fn shutdown_without_traffic() {
        let sys = ThreadedSystem::spawn(
            vec![CounterActor {
                hits: 0,
                reported: None,
            }],
            1,
        );
        let actors = sys.shutdown();
        assert_eq!(actors.len(), 1);
    }
}
