//! Virtual time.
//!
//! The simulator's clock is a `u64` nanosecond counter starting at zero. The
//! paper's model assumes a global clock not accessible to processes (§II);
//! accordingly, actors never read [`Time`] to make protocol decisions — it
//! exists for the harness, the metrics, and the auditors.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since simulation start.
    pub fn nanos(&self) -> Nanos {
        self.0
    }

    /// Fractional milliseconds, for reporting.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / MILLI as f64
    }
}

impl Add<Nanos> for Time {
    type Output = Time;
    fn add(self, d: Nanos) -> Time {
        Time(self.0.saturating_add(d))
    }
}

impl AddAssign<Nanos> for Time {
    fn add_assign(&mut self, d: Nanos) {
        self.0 = self.0.saturating_add(d);
    }
}

impl Sub<Time> for Time {
    type Output = Nanos;
    /// Elapsed nanoseconds; saturates at zero if `rhs` is later.
    fn sub(self, rhs: Time) -> Nanos {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + 5 * MILLI;
        assert_eq!(t.nanos(), 5_000_000);
        assert_eq!(t - Time::ZERO, 5 * MILLI);
        assert_eq!(Time::ZERO - t, 0); // saturating
        let mut u = t;
        u += MILLI;
        assert_eq!(u.as_millis_f64(), 6.0);
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Time(1_500_000)), "t=1.500ms");
    }
}
