//! The deterministic discrete-event world.
//!
//! [`World`] owns the actors, the event queue, the network model, and a
//! seeded RNG. Every run with the same seed, actors, and network model
//! replays the exact same schedule — the property all experiment harnesses
//! and failure-injection tests rely on.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, ActorId, Context, Effect, Message, TimerId};
use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::sched::{build_scheduler, Scheduler, SchedulerKind};
use crate::time::{Nanos, Time};
use crate::trace::{Trace, TraceKind};

/// A scheduled occurrence.
enum EventKind<M> {
    Start(ActorId),
    Deliver {
        from: ActorId,
        to: ActorId,
        msg: M,
        /// Transmission + queueing component of the delivery delay.
        tx: Nanos,
        /// Propagation component of the delivery delay.
        prop: Nanos,
    },
    Timer {
        actor: ActorId,
        id: TimerId,
        tag: u64,
    },
    Crash(ActorId),
    Restart {
        actor: ActorId,
        /// Runs at restart time — typically recovering state from a
        /// durable store shared with the dead actor.
        builder: Box<dyn FnOnce() -> Box<dyn Actor<Msg = M>>>,
    },
}

impl<M: std::fmt::Debug> std::fmt::Debug for EventKind<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Start(a) => f.debug_tuple("Start").field(a).finish(),
            EventKind::Deliver {
                from,
                to,
                msg,
                tx,
                prop,
            } => f
                .debug_struct("Deliver")
                .field("from", from)
                .field("to", to)
                .field("msg", msg)
                .field("tx", tx)
                .field("prop", prop)
                .finish(),
            EventKind::Timer { actor, id, tag } => f
                .debug_struct("Timer")
                .field("actor", actor)
                .field("id", id)
                .field("tag", tag)
                .finish(),
            EventKind::Crash(a) => f.debug_tuple("Crash").field(a).finish(),
            EventKind::Restart { actor, .. } => f
                .debug_struct("Restart")
                .field("actor", actor)
                .finish_non_exhaustive(),
        }
    }
}

/// A pending event summary exposed by [`World::pending_events`] — the
/// explorer's view of one schedulable choice. `seq` is the handle to hand
/// back to [`World::step_seq`]; within one deterministic replay, sequence
/// numbers are assigned identically, so a recorded `seq` names the same
/// event on every replay of the same prefix.
#[derive(Clone, Debug)]
pub struct PendingEvent {
    /// The event's sequence number (pass to [`World::step_seq`]).
    pub seq: u64,
    /// The virtual time the event-clock scheduler would run it at.
    pub at: Time,
    /// What the event is.
    pub kind: PendingKind,
}

/// The payload-free shape of a pending event.
#[derive(Clone, Debug)]
pub enum PendingKind {
    /// An actor's `on_start` callback.
    Start {
        /// The starting actor.
        actor: ActorId,
    },
    /// A message delivery.
    Deliver {
        /// Sender.
        from: ActorId,
        /// Receiver.
        to: ActorId,
        /// The message's [`Message::kind`] label.
        kind: &'static str,
        /// The message's [`Message::content_digest`], if any.
        digest: Option<u64>,
    },
    /// A pending (uncancelled) timer.
    Timer {
        /// The timer's owner.
        actor: ActorId,
        /// The timer tag passed back to `on_timer`.
        tag: u64,
    },
    /// A scheduled crash.
    Crash {
        /// The actor to crash.
        actor: ActorId,
    },
    /// A scheduled restart.
    Restart {
        /// The actor to rebuild.
        actor: ActorId,
    },
}

/// A deterministic discrete-event simulation of an asynchronous
/// message-passing system.
///
/// # Examples
///
/// ```
/// use awr_sim::{Actor, ActorId, ConstantLatency, Context, Message, World};
///
/// #[derive(Clone, Debug)]
/// struct Ping(u32);
/// impl Message for Ping {}
///
/// /// Forwards a counter around the ring until it reaches 10.
/// struct Node { last: u32 }
/// impl Actor for Node {
///     type Msg = Ping;
///     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
///         if ctx.id() == ActorId(0) {
///             ctx.send(ActorId(1), Ping(1));
///         }
///     }
///     fn on_message(&mut self, _from: ActorId, msg: Ping, ctx: &mut Context<'_, Ping>) {
///         self.last = msg.0;
///         if msg.0 < 10 {
///             let next = ActorId((ctx.id().index() + 1) % ctx.n_actors());
///             ctx.send(next, Ping(msg.0 + 1));
///         }
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut world = World::new(7, ConstantLatency(1_000));
/// world.add_actor(Node { last: 0 });
/// world.add_actor(Node { last: 0 });
/// world.run_to_quiescence();
/// let max = (0..2).map(|i| world.actor::<Node>(ActorId(i)).unwrap().last).max();
/// assert_eq!(max, Some(10));
/// ```
pub struct World<M: Message> {
    time: Time,
    seq: u64,
    queue: Box<dyn Scheduler<EventKind<M>>>,
    scheduler_kind: SchedulerKind,
    actors: Vec<Box<dyn Actor<Msg = M>>>,
    crashed: Vec<bool>,
    /// Dead incarnations displaced by [`World::restart_now`], kept for
    /// post-hoc inspection: an omniscient checker (history auditor,
    /// metrics scraper) must still see what a crashed process had observed,
    /// even though the process itself lost it.
    graveyard: Vec<(ActorId, Box<dyn Actor<Msg = M>>)>,
    started: bool,
    network: Box<dyn NetworkModel>,
    rng: StdRng,
    next_timer: u64,
    cancelled_timers: HashSet<TimerId>,
    metrics: Metrics,
    trace: Option<Trace>,
    /// Hard cap on processed events, a runaway-protocol guard.
    event_limit: u64,
}

impl<M: Message> World<M> {
    /// Creates a world with the given RNG seed and network model. Any
    /// [`crate::LatencyModel`] works directly (infinite bandwidth); wrap it
    /// in [`crate::BandwidthLinks`] to make message sizes shape delivery.
    ///
    /// Events run on the default [`SchedulerKind::TimingWheel`]; the
    /// tie-break contract (ascending `(at, seq)`) makes the schedule
    /// identical under every [`SchedulerKind`], so this is purely a
    /// wall-clock choice — see [`World::new_with_scheduler`].
    pub fn new(seed: u64, network: impl NetworkModel + 'static) -> World<M> {
        Self::new_with_scheduler(seed, network, SchedulerKind::TimingWheel)
    }

    /// [`World::new`] with an explicit event-queue implementation —
    /// `tests/scheduler_equivalence.rs` uses this to pin the timing wheel
    /// against the [`SchedulerKind::BinaryHeap`] reference seed-for-seed.
    pub fn new_with_scheduler(
        seed: u64,
        network: impl NetworkModel + 'static,
        kind: SchedulerKind,
    ) -> World<M> {
        World {
            time: Time::ZERO,
            seq: 0,
            queue: build_scheduler(kind),
            scheduler_kind: kind,
            actors: Vec::new(),
            crashed: Vec::new(),
            graveyard: Vec::new(),
            started: false,
            network: Box::new(network),
            rng: StdRng::seed_from_u64(seed),
            next_timer: 0,
            cancelled_timers: HashSet::new(),
            metrics: Metrics::default(),
            trace: None,
            event_limit: 50_000_000,
        }
    }

    /// Enables execution tracing with the given ring-buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Adds an actor, returning its id. Must be called before the first
    /// [`World::step`].
    ///
    /// # Panics
    ///
    /// Panics if the world has already started running.
    pub fn add_actor(&mut self, actor: impl Actor<Msg = M>) -> ActorId {
        assert!(!self.started, "cannot add actors after the world started");
        let id = ActorId(self.actors.len());
        self.actors.push(Box::new(actor));
        self.crashed.push(false);
        self.push_event(Time::ZERO, EventKind::Start(id));
        id
    }

    /// Number of actors.
    pub fn n_actors(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Overrides the runaway-event guard (default 50 M events).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// The event-queue implementation this world runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler_kind
    }

    /// Swaps the event-queue implementation, migrating every pending
    /// event (sequence numbers preserved). Because all schedulers honor
    /// the same `(at, seq)` total order, this changes nothing about the
    /// schedule — harnesses built on [`World::new`] use it to rerun a
    /// scenario on the [`SchedulerKind::BinaryHeap`] reference.
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        if kind == self.scheduler_kind {
            return;
        }
        let mut fresh = build_scheduler(kind);
        while let Some((at, seq, ev)) = self.queue.pop() {
            fresh.push(at, seq, ev);
        }
        self.queue = fresh;
        self.scheduler_kind = kind;
    }

    /// Schedules actor `a` to crash at virtual time `at`. Crashed actors
    /// receive no further callbacks; in-flight messages to them are dropped
    /// on delivery (equivalent, in the crash model, to never processing
    /// them).
    pub fn schedule_crash(&mut self, a: ActorId, at: Time) {
        self.push_event(at, EventKind::Crash(a));
    }

    /// Crashes actor `a` immediately.
    pub fn crash_now(&mut self, a: ActorId) {
        self.crashed[a.index()] = true;
    }

    /// Returns `true` if `a` has crashed.
    pub fn is_crashed(&self, a: ActorId) -> bool {
        self.crashed[a.index()]
    }

    /// Schedules actor `a` to be rebuilt and rebooted at virtual time
    /// `at`. The `builder` runs at the restart instant — typically
    /// recovering state from a durable store it shares with the dead
    /// actor — and the rebuilt actor replaces the old one, clears the
    /// crashed flag, and gets an `on_start` callback. Everything sent to
    /// the actor while it was down stays dropped: a restart resumes from
    /// what the builder reconstructs, never from lost in-flight messages.
    pub fn schedule_restart(
        &mut self,
        a: ActorId,
        at: Time,
        builder: impl FnOnce() -> Box<dyn Actor<Msg = M>> + 'static,
    ) {
        self.push_event(
            at,
            EventKind::Restart {
                actor: a,
                builder: Box::new(builder),
            },
        );
    }

    /// Replaces actor `a` with `actor` immediately, clearing its crashed
    /// flag and running `on_start` at the current virtual time — the
    /// harness-driven form of [`World::schedule_restart`].
    pub fn restart_now(&mut self, a: ActorId, actor: Box<dyn Actor<Msg = M>>) {
        let corpse = std::mem::replace(&mut self.actors[a.index()], actor);
        self.graveyard.push((a, corpse));
        self.crashed[a.index()] = false;
        self.metrics.restarts += 1;
        if let Some(t) = self.trace.as_mut() {
            t.record(self.time, TraceKind::Restart { actor: a });
        }
        self.dispatch(a, |actor, ctx| actor.on_start(ctx));
    }

    /// Injects a message from `from` to `to` as if `from` had sent it now.
    /// Useful for harness-driven stimuli.
    pub fn inject(&mut self, from: ActorId, to: ActorId, msg: M) {
        self.send_message(from, to, msg);
    }

    fn send_message(&mut self, from: ActorId, to: ActorId, msg: M) {
        let bytes = msg.wire_size();
        let d = self
            .network
            .delivery(from, to, self.time, bytes, &mut self.rng);
        let tx = d.queued.saturating_add(d.transmission);
        self.metrics.record_send(msg.kind(), bytes, from, to, d);
        if let Some(obj) = msg.object_key() {
            self.metrics.record_object(obj, bytes);
        }
        self.push_event(
            self.time + d.total(),
            EventKind::Deliver {
                from,
                to,
                msg,
                tx,
                prop: d.propagation,
            },
        );
    }

    /// Immutable typed access to an actor's state (post-run inspection).
    pub fn actor<T: Actor<Msg = M>>(&self, id: ActorId) -> Option<&T> {
        self.actors.get(id.index())?.as_any().downcast_ref::<T>()
    }

    /// Typed access to the dead incarnations of actor `id`: every actor
    /// value a restart displaced, in displacement order. A crashed process
    /// forgets, but the simulation's omniscient observers (auditors,
    /// checkers) must not — they read what each incarnation had recorded
    /// before it died here.
    pub fn dead_incarnations<T: Actor<Msg = M>>(
        &self,
        id: ActorId,
    ) -> impl Iterator<Item = &T> + '_ {
        self.graveyard
            .iter()
            .filter(move |(a, _)| *a == id)
            .filter_map(|(_, actor)| actor.as_any().downcast_ref::<T>())
    }

    /// Mutable typed access to an actor's state.
    pub fn actor_mut<T: Actor<Msg = M>>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors
            .get_mut(id.index())?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Calls `f` with a [`Context`] on behalf of actor `id` — the harness
    /// hook to start client operations mid-run (e.g. "invoke a read now").
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn with_actor_ctx<T: Actor<Msg = M>, R>(
        &mut self,
        id: ActorId,
        f: impl FnOnce(&mut T, &mut Context<'_, M>) -> R,
    ) -> R {
        let n_actors = self.actors.len();
        let mut effects = Vec::new();
        let mut ctx = Context {
            now: self.time,
            self_id: id,
            n_actors,
            rng: &mut self.rng,
            effects: &mut effects,
            next_timer: &mut self.next_timer,
        };
        let actor = self.actors[id.index()]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch in with_actor_ctx");
        let r = f(actor, &mut ctx);
        self.apply_effects(id, effects);
        r
    }

    fn push_event(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
    }

    fn apply_effects(&mut self, from: ActorId, effects: Vec<Effect<M>>) {
        for e in effects {
            match e {
                Effect::Send { to, msg } => {
                    self.send_message(from, to, msg);
                }
                Effect::SetTimer { id, after, tag } => {
                    self.push_event(
                        self.time + after,
                        EventKind::Timer {
                            actor: from,
                            id,
                            tag,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.cancelled_timers.insert(id);
                }
                Effect::CrashSelf => {
                    self.crashed[from.index()] = true;
                }
                Effect::Counter { key, add } => {
                    self.metrics.record_counter(key, add);
                }
                Effect::Sample { key, value } => {
                    self.metrics.record_sample(key, value);
                }
            }
        }
    }

    fn dispatch(
        &mut self,
        to: ActorId,
        cb: impl FnOnce(&mut dyn Actor<Msg = M>, &mut Context<'_, M>),
    ) {
        if self.crashed[to.index()] {
            return;
        }
        let n_actors = self.actors.len();
        let mut effects = Vec::new();
        {
            let mut ctx = Context {
                now: self.time,
                self_id: to,
                n_actors,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer: &mut self.next_timer,
            };
            cb(self.actors[to.index()].as_mut(), &mut ctx);
        }
        self.apply_effects(to, effects);
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event limit is exceeded (runaway protocol).
    pub fn step(&mut self) -> bool {
        let Some((at, _seq, kind)) = self.queue.pop() else {
            self.started = true;
            return false;
        };
        debug_assert!(at >= self.time, "time went backwards");
        self.process_event(at, kind);
        true
    }

    /// Processes the pending event with sequence number `seq`, regardless
    /// of its position in the time order — the explorer-driven scheduling
    /// seam. Virtual time only moves forward: delivering a "late" event
    /// before an "early" one clamps the clock to the later of the two, so
    /// actors still observe monotonic `now()`. Returns `false` if no
    /// pending event has that sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the event limit is exceeded (runaway protocol).
    pub fn step_seq(&mut self, seq: u64) -> bool {
        match self.queue.take_seq(seq) {
            Some((at, _seq, kind)) => {
                self.process_event(at, kind);
                true
            }
            None => false,
        }
    }

    fn process_event(&mut self, at: Time, kind: EventKind<M>) {
        self.started = true;
        assert!(
            self.metrics.events_processed < self.event_limit,
            "event limit exceeded ({}) — runaway protocol?",
            self.event_limit
        );
        self.metrics.events_processed += 1;
        self.time = self.time.max(at);
        self.metrics.last_time = self.time;
        match kind {
            EventKind::Start(a) => {
                self.dispatch(a, |actor, ctx| actor.on_start(ctx));
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                tx,
                prop,
            } => {
                if self.crashed[to.index()] {
                    self.metrics.messages_dropped_crashed += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(
                            self.time,
                            TraceKind::DropCrashed {
                                from,
                                to,
                                kind: msg.kind(),
                                bytes: msg.wire_size(),
                            },
                        );
                    }
                } else {
                    self.metrics.messages_delivered += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(
                            self.time,
                            TraceKind::Deliver {
                                from,
                                to,
                                kind: msg.kind(),
                                bytes: msg.wire_size(),
                                transmission: tx,
                                propagation: prop,
                            },
                        );
                    }
                    self.dispatch(to, |actor, ctx| actor.on_message(from, msg, ctx));
                }
            }
            EventKind::Timer { actor, id, tag } => {
                if self.cancelled_timers.remove(&id) {
                    // cancelled; skip
                } else if !self.crashed[actor.index()] {
                    self.metrics.timers_fired += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(self.time, TraceKind::Timer { actor, tag });
                    }
                    self.dispatch(actor, |a, ctx| a.on_timer(tag, ctx));
                }
            }
            EventKind::Crash(a) => {
                self.crashed[a.index()] = true;
                if let Some(t) = self.trace.as_mut() {
                    t.record(self.time, TraceKind::Crash { actor: a });
                }
            }
            EventKind::Restart { actor, builder } => {
                let rebuilt = builder();
                self.restart_now(actor, rebuilt);
            }
        }
    }

    /// The pending events, in `(time, seq)` order, with opaque payloads
    /// summarized — what an explorer enumerates to choose the next
    /// scheduling decision. Cancelled timers are omitted (firing them is a
    /// no-op).
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let mut out: Vec<PendingEvent> = Vec::with_capacity(self.queue.len());
        self.queue.for_each(&mut |at, seq, ev| {
            let kind = match ev {
                EventKind::Start(a) => PendingKind::Start { actor: *a },
                EventKind::Deliver { from, to, msg, .. } => PendingKind::Deliver {
                    from: *from,
                    to: *to,
                    kind: msg.kind(),
                    digest: msg.content_digest(),
                },
                EventKind::Timer { actor, id, tag } => {
                    if self.cancelled_timers.contains(id) {
                        return;
                    }
                    PendingKind::Timer {
                        actor: *actor,
                        tag: *tag,
                    }
                }
                EventKind::Crash(a) => PendingKind::Crash { actor: *a },
                EventKind::Restart { actor, .. } => PendingKind::Restart { actor: *actor },
            };
            out.push(PendingEvent { seq, at, kind });
        });
        out.sort_by_key(|e| (e.at, e.seq));
        out
    }

    /// A canonical digest of the world's logical state: every actor's
    /// [`Actor::state_digest`] (live and dead incarnations), crash flags,
    /// and the multiset of in-flight messages and pending timers —
    /// deliberately excluding virtual times and event sequence numbers, so
    /// two different schedules that reach the same protocol state hash
    /// equal. Returns `None` if any actor or any in-flight message is not
    /// diggestible.
    pub fn canonical_digest(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, a) in self.actors.iter().enumerate() {
            i.hash(&mut h);
            self.crashed[i].hash(&mut h);
            a.state_digest()?.hash(&mut h);
        }
        for (id, corpse) in &self.graveyard {
            id.index().hash(&mut h);
            corpse.state_digest()?.hash(&mut h);
        }
        // In-flight events as a sorted multiset of identities, independent
        // of delivery times and queue positions.
        let mut pending: Vec<(u8, usize, usize, u64)> = Vec::with_capacity(self.queue.len());
        let mut undigestible = false;
        self.queue.for_each(&mut |_, _, ev| match ev {
            EventKind::Start(a) => pending.push((0, a.index(), 0, 0)),
            EventKind::Deliver { from, to, msg, .. } => match msg.content_digest() {
                Some(d) => pending.push((1, from.index(), to.index(), d)),
                None => undigestible = true,
            },
            EventKind::Timer { actor, id, tag } => {
                if !self.cancelled_timers.contains(id) {
                    pending.push((2, actor.index(), 0, *tag));
                }
            }
            EventKind::Crash(a) => pending.push((3, a.index(), 0, 0)),
            EventKind::Restart { actor, .. } => pending.push((4, actor.index(), 0, 0)),
        });
        if undigestible {
            return None;
        }
        pending.sort_unstable();
        pending.hash(&mut h);
        Some(h.finish())
    }

    /// Runs until the event queue drains. Returns the metrics summary.
    pub fn run_to_quiescence(&mut self) -> &Metrics {
        while self.step() {}
        self.metrics()
    }

    /// Runs until `pred(self)` is true or the queue drains. Returns `true`
    /// if the predicate was satisfied.
    pub fn run_until(&mut self, mut pred: impl FnMut(&World<M>) -> bool) -> bool {
        loop {
            if pred(self) {
                return true;
            }
            if !self.step() {
                return pred(self);
            }
        }
    }

    /// Runs until virtual time reaches `deadline` or the queue drains.
    pub fn run_for(&mut self, duration: Nanos) {
        let deadline = self.time + duration;
        loop {
            match self.queue.next_key() {
                Some((at, _)) if at <= deadline => {
                    self.step();
                }
                _ => {
                    self.time = deadline;
                    self.metrics.last_time = deadline;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ConstantLatency, UniformLatency};
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }
    impl Message for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "ping",
                Msg::Pong(_) => "pong",
            }
        }
    }

    /// Sends a ping to everyone on start; replies pong to pings.
    struct Echo {
        pongs: Vec<u64>,
        fired_tags: Vec<u64>,
    }

    impl Echo {
        fn new() -> Echo {
            Echo {
                pongs: Vec::new(),
                fired_tags: Vec::new(),
            }
        }
    }

    impl Actor for Echo {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.id() == ActorId(0) {
                let n = ctx.n_actors();
                let targets: Vec<ActorId> = (0..n).map(ActorId).collect();
                ctx.send_to_all(targets, Msg::Ping(7));
            }
        }
        fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping(x) => ctx.send(from, Msg::Pong(x)),
                Msg::Pong(x) => self.pongs.push(x),
            }
        }
        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Msg>) {
            self.fired_tags.push(tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world_with(n: usize, seed: u64) -> World<Msg> {
        let mut w = World::new(seed, UniformLatency::new(1, 1000));
        for _ in 0..n {
            w.add_actor(Echo::new());
        }
        w
    }

    #[test]
    fn ping_pong_all() {
        let mut w = world_with(5, 1);
        w.run_to_quiescence();
        let a0 = w.actor::<Echo>(ActorId(0)).unwrap();
        assert_eq!(a0.pongs.len(), 5); // includes self
        assert_eq!(w.metrics().sent_of_kind("ping"), 5);
        assert_eq!(w.metrics().sent_of_kind("pong"), 5);
        assert_eq!(w.metrics().messages_delivered, 10);
        // Every send is byte-accounted with the default wire size.
        let per_msg = std::mem::size_of::<Msg>() as u64;
        assert_eq!(w.metrics().bytes_sent, 10 * per_msg);
        assert_eq!(w.metrics().bytes_of_kind("ping"), 5 * per_msg);
        assert_eq!(w.metrics().mean_bytes_of_kind("pong"), per_msg as f64);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut w = world_with(6, seed);
            w.run_to_quiescence();
            (w.now(), w.metrics().messages_delivered)
        };
        assert_eq!(run(42), run(42));
        // Different seeds virtually always give different final times.
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn crashed_actor_receives_nothing() {
        let mut w = world_with(4, 2);
        w.schedule_crash(ActorId(3), Time::ZERO);
        w.run_to_quiescence();
        let crashed = w.actor::<Echo>(ActorId(3)).unwrap();
        assert!(crashed.pongs.is_empty());
        assert!(w.is_crashed(ActorId(3)));
        assert!(w.metrics().messages_dropped_crashed > 0);
        // a0 gets pongs only from the 3 live actors.
        let a0 = w.actor::<Echo>(ActorId(0)).unwrap();
        assert_eq!(a0.pongs.len(), 3);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut w: World<Msg> = World::new(3, ConstantLatency(10));
        w.add_actor(Echo::new());
        let cancel_me = w.with_actor_ctx::<Echo, _>(ActorId(0), |_, ctx| {
            ctx.set_timer(50, 1);
            let id = ctx.set_timer(100, 2);
            ctx.set_timer(150, 3);
            id
        });
        w.with_actor_ctx::<Echo, _>(ActorId(0), |_, ctx| ctx.cancel_timer(cancel_me));
        w.run_to_quiescence();
        let a = w.actor::<Echo>(ActorId(0)).unwrap();
        assert_eq!(a.fired_tags, vec![1, 3]);
        assert_eq!(w.metrics().timers_fired, 2);
    }

    #[test]
    fn run_for_respects_deadline() {
        let mut w = world_with(5, 3);
        w.run_for(1); // at most the start events at t=0 and nothing later
        assert!(w.now() <= Time(1));
        w.run_for(10_000_000);
        assert_eq!(w.now(), Time(1 + 10_000_000));
    }

    #[test]
    fn run_until_predicate() {
        let mut w = world_with(5, 4);
        let got = w.run_until(|w| {
            w.actor::<Echo>(ActorId(0))
                .map(|a| a.pongs.len() >= 2)
                .unwrap_or(false)
        });
        assert!(got);
        assert!(w.actor::<Echo>(ActorId(0)).unwrap().pongs.len() >= 2);
    }

    #[test]
    fn inject_external_message() {
        let mut w = world_with(2, 5);
        w.run_to_quiescence();
        w.inject(ActorId(1), ActorId(0), Msg::Pong(99));
        w.run_to_quiescence();
        assert!(w.actor::<Echo>(ActorId(0)).unwrap().pongs.contains(&99));
    }

    #[test]
    fn restart_rebuilds_and_reboots() {
        // Echo 3 dies at t=0 and is rebuilt at t=2ms; a fresh ping after
        // the restart reaches it, while pings sent during the downtime
        // stay dropped.
        let mut w = world_with(4, 2);
        w.enable_trace(64);
        w.schedule_crash(ActorId(3), Time::ZERO);
        w.schedule_restart(ActorId(3), Time(2_000_000), || Box::new(Echo::new()));
        w.run_to_quiescence();
        assert!(!w.is_crashed(ActorId(3)));
        assert_eq!(w.metrics().restarts, 1);
        assert!(w.metrics().messages_dropped_crashed > 0);
        let t = w.trace().unwrap();
        assert_eq!(
            t.records()
                .filter(|r| matches!(r.kind, TraceKind::Restart { .. }))
                .count(),
            1
        );
        // Post-restart traffic flows: inject a ping, expect a pong back.
        w.inject(ActorId(0), ActorId(3), Msg::Ping(42));
        w.run_to_quiescence();
        let a0 = w.actor::<Echo>(ActorId(0)).unwrap();
        assert!(a0.pongs.contains(&42), "restarted actor must answer");
    }

    #[test]
    fn restart_now_replaces_state() {
        let mut w = world_with(2, 9);
        w.run_to_quiescence();
        w.crash_now(ActorId(1));
        assert!(w.is_crashed(ActorId(1)));
        let mut fresh = Echo::new();
        fresh.pongs.push(777); // "recovered" state travels in with the actor
        w.restart_now(ActorId(1), Box::new(fresh));
        assert!(!w.is_crashed(ActorId(1)));
        assert_eq!(w.actor::<Echo>(ActorId(1)).unwrap().pongs, vec![777]);
        assert_eq!(w.metrics().restarts, 1);
    }

    #[test]
    #[should_panic(expected = "cannot add actors")]
    fn adding_actor_after_start_panics() {
        let mut w = world_with(2, 6);
        w.step();
        w.add_actor(Echo::new());
    }

    #[test]
    fn bandwidth_model_shapes_the_schedule() {
        use crate::network::{BandwidthLinks, BandwidthMatrix};

        // Same seed and actors; the only difference is link bandwidth.
        let run = |bw: u64| {
            let net = BandwidthLinks::new(ConstantLatency(1_000), BandwidthMatrix::uniform(3, bw));
            let mut w: World<Msg> = World::new(11, net);
            for _ in 0..3 {
                w.add_actor(Echo::new());
            }
            w.enable_trace(64);
            w.run_to_quiescence();
            let tx_total = w.trace().unwrap().delivered_delay_components_of("ping").0;
            (w.now(), w.metrics().clone(), tx_total)
        };
        let (slow_end, slow_m, slow_tx) = run(1_000); // 1 KB/s: tx dominates
        let (fast_end, fast_m, fast_tx) = run(crate::network::UNLIMITED_BANDWIDTH);
        assert!(
            slow_end > fast_end,
            "constrained links must stretch the run ({slow_end} vs {fast_end})"
        );
        assert!(slow_tx > 0 && fast_tx == 0);
        // Same traffic either way; the bytes are link-attributed.
        assert_eq!(slow_m.bytes_sent, fast_m.bytes_sent);
        let per_msg = std::mem::size_of::<Msg>() as u64;
        assert_eq!(slow_m.bytes_on_link(ActorId(0), ActorId(1)), per_msg);
        assert!(slow_m.max_link_utilization() > 0.0);
        assert_eq!(fast_m.max_link_utilization(), 0.0);
    }
}
