//! # awr-sim — a deterministic simulator for asynchronous message-passing
//!
//! The substrate beneath every protocol in the `awr` workspace. The paper's
//! system model (§II) is an asynchronous message-passing system: a static
//! set of processes, reliable point-to-point links with arbitrary finite
//! delays, and up to `f` crash faults. This crate provides that model twice:
//!
//! * [`World`] — a seeded discrete-event simulation. Deterministic per seed,
//!   with pluggable [`LatencyModel`]s (constant, uniform, WAN matrices) and
//!   composable adversaries ([`TargetedDelay`], [`HealingPartition`],
//!   [`SlowActors`]) that reorder and stall but never drop messages.
//!   Crash faults are injected by schedule or immediately, and crashed
//!   actors can be rebuilt and rebooted ([`World::schedule_restart`]) —
//!   [`FaultPlan`] generates whole kill/restart campaigns (scheduled,
//!   random at a rate, or aimed at reassignment instants).
//! * [`ThreadedSystem`] — the same [`Actor`] trait over real threads and
//!   crossbeam channels, for wall-clock benchmarks.
//!
//! A third runtime — real processes over TCP — lives in the `awr_net`
//! crate and plugs in through the [`transport`] seam defined here: a
//! [`Transport`] abstracts one node's message fabric and a [`NodeHost`]
//! pumps any [`Actor`] over it (see `docs/RUNTIME.md` for the
//! architecture).
//!
//! # The network model: propagation, transmission, serialization
//!
//! Delivery delay is decided by a [`NetworkModel`], which sees each
//! message's [`Message::wire_size`] and splits the delay into three
//! components (recorded per delivery when tracing is on):
//!
//! * **propagation** — the classic [`LatencyModel`] sample (distance,
//!   jitter, adversarial holds);
//! * **transmission** — `wire_size / link bandwidth`, from a
//!   [`BandwidthMatrix`] (per-region-pair bytes/second, mirroring
//!   [`WanMatrix`]);
//! * **queueing** — time waiting for the link: [`BandwidthLinks`] keeps a
//!   per-directed-link (or per-sender-uplink, [`LinkDiscipline`]) FIFO
//!   horizon, so a 12 MB full change set really *occupies* the link and
//!   delays everything queued behind it.
//!
//! Every [`LatencyModel`] is a [`NetworkModel`] via a blanket impl that
//! charges zero transmission — size-oblivious scenarios, tests, and
//! benches run unchanged, and wrapping the same model in
//! [`BandwidthLinks`] with [`UNLIMITED_BANDWIDTH`] reproduces their
//! schedules *exactly* (pinned by `tests/network_equivalence.rs`).
//! Topology presets cover the interesting regimes: [`lan_network`],
//! [`wan_network`], [`geo_network`], and [`constrained_uplink`] (every
//! sender's outgoing traffic serializes on one modest uplink).
//! [`Metrics`] attributes bytes, transmission time, and delivery-delay
//! components per directed link ([`Metrics::bytes_on_link`],
//! [`Metrics::link_utilization`], [`Metrics::link_delay`]) — the
//! observation inputs of `awr_quorum`'s placement policies.
//!
//! # Cross traffic
//!
//! Real links carry other people's bytes too. The [`workload`] module adds
//! background flows — [`ConstantBitrate`], [`BurstyOnOff`],
//! [`ReassignmentBurst`] — that a [`CrossTraffic`] decorator charges onto a
//! [`BandwidthLinks`] network (via [`BandwidthLinks::occupy`]), so protocol
//! messages queue behind competing traffic. Generators are pure functions
//! of virtual time: an empty flow list reproduces the unwrapped schedule
//! exactly.
//!
//! Protocols are explicit state machines (no async runtime): see the crate
//! `awr-core` for the paper's protocols built on this.
//!
//! # Examples
//!
//! A two-actor echo in a simulated WAN:
//!
//! ```
//! use awr_sim::{five_region_wan, Actor, ActorId, Context, Message, World};
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl Message for Hello {}
//!
//! struct Greeter { got: bool }
//! impl Actor for Greeter {
//!     type Msg = Hello;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
//!         if ctx.id() == ActorId(0) { ctx.send(ActorId(1), Hello); }
//!     }
//!     fn on_message(&mut self, _f: ActorId, _m: Hello, _c: &mut Context<'_, Hello>) {
//!         self.got = true;
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut w = World::new(0xA11CE, five_region_wan(2, 0.1));
//! w.add_actor(Greeter { got: false });
//! w.add_actor(Greeter { got: false });
//! w.run_to_quiescence();
//! assert!(w.actor::<Greeter>(ActorId(1)).unwrap().got);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod fault;
mod metrics;
#[cfg(feature = "mutate")]
pub mod mutate;
mod network;
pub mod openloop;
pub mod sched;
mod threaded;
mod time;
mod topology;
mod trace;
pub mod transport;
pub mod workload;
mod world;

pub use actor::{Actor, ActorId, Context, Message, TimerId};
pub use fault::{Fault, FaultPlan};
pub use metrics::{LinkDelayStat, Metrics};
pub use network::{
    shared_latency, BandwidthLinks, BandwidthMatrix, ConstantLatency, Delivery, FifoLinks,
    HealingPartition, LatencyModel, LinkDiscipline, NetworkModel, ReceiveDiscipline, SharedLatency,
    SlowActors, TargetedDelay, UniformLatency, WanMatrix, UNLIMITED_BANDWIDTH,
};
pub use openloop::{ArrivalProcess, ArrivalSpec, BurstyArrivals, PoissonArrivals};
pub use sched::{BinaryHeapScheduler, Scheduler, SchedulerKind, TimingWheel};
pub use threaded::{downcast_actor, ThreadedMetrics, ThreadedSystem};
pub use time::{Nanos, Time, MICRO, MILLI, SECOND};
pub use topology::{
    constrained_uplink, five_region_bandwidth, five_region_matrix, five_region_wan,
    five_region_wan_with_placement, geo_network, lan_network, mean_delay_profile, wan_network,
    Region, GBIT10,
};
pub use trace::{Trace, TraceKind, TraceRecord};
pub use transport::{ChannelTransport, KindStats, NodeHost, Step, Transport};
pub use workload::{
    BurstyOnOff, ConstantBitrate, CrossTraffic, CrossTrafficStats, Flow, ReassignmentBurst,
    RegimeShift, TrafficGen,
};
pub use world::{PendingEvent, PendingKind, World};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::any::Any;

    #[derive(Clone, Debug)]
    struct Token(u64);
    impl Message for Token {}

    /// Relays each token once to a pseudo-random neighbour; counts receipts.
    struct Relay {
        received: u64,
        budget: u64,
    }

    impl Actor for Relay {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.id().index() == 0 {
                for i in 0..self.budget {
                    let n = ctx.n_actors();
                    ctx.send(ActorId((i as usize) % n), Token(i));
                }
            }
        }
        fn on_message(&mut self, _f: ActorId, t: Token, ctx: &mut Context<'_, Token>) {
            self.received += 1;
            if t.0 > 0 {
                let n = ctx.n_actors();
                ctx.send(ActorId((t.0 as usize) % n), Token(t.0 - 1));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    proptest! {
        /// Total receipts are schedule-independent: reliable links deliver
        /// everything exactly once, whatever the latency seed.
        #[test]
        fn delivery_count_is_seed_independent(seed in 0u64..500, n in 2usize..6) {
            let run = |seed: u64| {
                let mut w: World<Token> = World::new(seed, UniformLatency::new(1, 10_000));
                for _ in 0..n {
                    w.add_actor(Relay { received: 0, budget: 20 });
                }
                w.run_to_quiescence();
                (0..n).map(|i| w.actor::<Relay>(ActorId(i)).unwrap().received).sum::<u64>()
            };
            prop_assert_eq!(run(seed), run(seed + 12345));
        }

        /// Same seed ⇒ byte-identical schedule (event and message counts).
        #[test]
        fn replay_identical(seed in 0u64..500) {
            let run = |seed: u64| {
                let mut w: World<Token> = World::new(seed, UniformLatency::new(1, 10_000));
                for _ in 0..4 {
                    w.add_actor(Relay { received: 0, budget: 15 });
                }
                w.run_to_quiescence();
                (w.now(), w.metrics().events_processed, w.metrics().messages_sent)
            };
            prop_assert_eq!(run(seed), run(seed));
        }
    }
}
