//! Process identifiers.
//!
//! The system model (paper §II) has two non-overlapping sets of processes: a
//! finite set of `n` servers and an unbounded set of clients. Newtypes keep
//! the two spaces statically distinct while [`ProcessId`] unifies them where
//! the paper does (the issuer field of a change may be either).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a server, dense in `0..n`.
///
/// The paper indexes servers `s_1..s_n`; we use zero-based indices and render
/// them one-based in `Display` to match the paper's notation.
///
/// # Examples
///
/// ```
/// use awr_types::ServerId;
/// let s = ServerId(0);
/// assert_eq!(s.to_string(), "s1");
/// assert_eq!(s.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Zero-based index of this server.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Iterator over all server ids of an `n`-server system.
    pub fn all(n: usize) -> impl Iterator<Item = ServerId> {
        (0..n as u32).map(ServerId)
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0 + 1)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0 + 1)
    }
}

/// Identifier of a client.
///
/// # Examples
///
/// ```
/// use awr_types::ClientId;
/// assert_eq!(ClientId(1).to_string(), "c2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0 + 1)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0 + 1)
    }
}

/// Identifier of an object (a keyed register) in the multi-object store.
///
/// The paper's reassignment machinery governs the *quorum system*, not a
/// datum: one weighted configuration can serve any number of registers.
/// `ObjectId` names one such register. Identifiers are dense by convention
/// but nothing requires it; [`ObjectId::DEFAULT`] is the register the
/// single-object convenience APIs operate on.
///
/// # Examples
///
/// ```
/// use awr_types::ObjectId;
/// assert_eq!(ObjectId(3).to_string(), "o3");
/// assert_eq!(ObjectId::DEFAULT, ObjectId(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The conventional default object (id 0) — what the single-object
    /// harness APIs read and write.
    pub const DEFAULT: ObjectId = ObjectId(0);

    /// The raw key, the form the simulator's per-object metrics use.
    pub fn key(&self) -> u64 {
        self.0
    }

    /// Iterator over the first `n` object ids (dense key spaces).
    pub fn all(n: usize) -> impl Iterator<Item = ObjectId> {
        (0..n as u64).map(ObjectId)
    }
}

impl Default for ObjectId {
    fn default() -> ObjectId {
        ObjectId::DEFAULT
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Either a server or a client — the issuer of a reassignment request.
///
/// Ordering places all servers before all clients, which gives changes a
/// deterministic total order (useful for canonical set representations).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcessId {
    /// A replica holding weight.
    Server(ServerId),
    /// An external reader/writer.
    Client(ClientId),
}

impl ProcessId {
    /// Returns the server id if this process is a server.
    pub fn as_server(&self) -> Option<ServerId> {
        match self {
            ProcessId::Server(s) => Some(*s),
            ProcessId::Client(_) => None,
        }
    }

    /// Returns `true` if this process is a server.
    pub fn is_server(&self) -> bool {
        matches!(self, ProcessId::Server(_))
    }
}

impl From<ServerId> for ProcessId {
    fn from(s: ServerId) -> ProcessId {
        ProcessId::Server(s)
    }
}

impl From<ClientId> for ProcessId {
    fn from(c: ClientId) -> ProcessId {
        ProcessId::Client(c)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessId::Server(s) => write!(f, "{s}"),
            ProcessId::Client(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_one_based() {
        assert_eq!(ServerId(0).to_string(), "s1");
        assert_eq!(ServerId(6).to_string(), "s7");
        assert_eq!(ClientId(0).to_string(), "c1");
        assert_eq!(ProcessId::from(ServerId(2)).to_string(), "s3");
    }

    #[test]
    fn all_servers() {
        let ids: Vec<_> = ServerId::all(3).collect();
        assert_eq!(ids, vec![ServerId(0), ServerId(1), ServerId(2)]);
    }

    #[test]
    fn ordering_servers_before_clients() {
        assert!(ProcessId::from(ServerId(99)) < ProcessId::from(ClientId(0)));
    }

    #[test]
    fn object_ids() {
        assert_eq!(ObjectId::default(), ObjectId::DEFAULT);
        assert_eq!(ObjectId(7).key(), 7);
        assert_eq!(ObjectId(7).to_string(), "o7");
        let all: Vec<_> = ObjectId::all(3).collect();
        assert_eq!(all, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
        assert!(ObjectId(1) < ObjectId(2));
    }

    #[test]
    fn as_server() {
        assert_eq!(ProcessId::from(ServerId(1)).as_server(), Some(ServerId(1)));
        assert_eq!(ProcessId::from(ClientId(1)).as_server(), None);
        assert!(ProcessId::from(ServerId(0)).is_server());
        assert!(!ProcessId::from(ClientId(0)).is_server());
    }
}
