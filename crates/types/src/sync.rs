//! Wire references to change sets: ship a digest, not the set.
//!
//! The paper's dynamic storage (§VII, Algorithms 5–6) attaches the full set
//! of completed changes `C` to every `R`/`W`/`RAck`/`WAck`, and the
//! `read_changes` phases of Algorithms 3–4 ship full restrictions — so
//! steady-state message size grows O(|C|) even when both ends already
//! agree. [`CsRef`] is the delta-aware wire representation that protocols
//! use instead of a [`ChangeSet`]:
//!
//! * [`CsRef::Summary`] — digest and cardinality only, O(1). Enough to
//!   *test* equality (the only thing Algorithm 6's accept check needs).
//! * [`CsRef::Delta`] — the changes a peer at a known digest is missing,
//!   O(gap). Extracted from the append-order journal by
//!   [`ChangeSet::delta_since`].
//! * [`CsRef::Full`] — the whole set, O(|C|). The unconditional fallback
//!   that keeps every negotiation bounded and liveness intact.
//!
//! The negotiation discipline (used by `awr-storage` and `awr-core`):
//! senders open with a `Summary`; a receiver that cannot prove equality
//! replies with its own digest; the sender answers with a `Delta` against
//! that digest when its journal covers the gap, and degrades to `Full`
//! after one failed delta. At most three exchanges separate any pair of
//! replicas, and the content-carrying fallback is exactly the pre-delta
//! protocol — so the §VII restart/refresh semantics are untouched.
//!
//! Digest equality implies set equality only w.h.p. (collision ≈ 2⁻⁶⁴, see
//! the `change_set` module docs); every equality conclusion drawn from a
//! [`CsRef`] carries that standard caveat.
//!
//! # Examples
//!
//! A receiver reconciling against a sender's reference:
//!
//! ```
//! use awr_types::sync::{CsRef, ReconcileOutcome};
//! use awr_types::{Change, ChangeSet, Ratio, ServerId};
//!
//! let mut sender = ChangeSet::uniform_initial(3, Ratio::ONE);
//! let mut receiver = sender.clone();
//! sender.insert(Change::new(ServerId(0), 2, ServerId(1), Ratio::dec("0.1")));
//!
//! // O(1) summary: the receiver detects the mismatch and reports its digest.
//! let summary = CsRef::summary(&sender);
//! let ReconcileOutcome::Diverged { local_digest, .. } = receiver.apply_ref(&summary) else {
//!     panic!("stale receiver must diverge on summary");
//! };
//!
//! // The sender's journal covers the gap: an O(gap) delta closes it.
//! let delta = CsRef::for_peer(&sender, local_digest);
//! assert!(matches!(delta, CsRef::Delta { .. }));
//! assert!(matches!(
//!     receiver.apply_ref(&delta),
//!     ReconcileOutcome::InSync { added: 1 }
//! ));
//! assert_eq!(receiver, sender);
//! ```

use serde::{Deserialize, Serialize};

use crate::change_set::change_mix;
use crate::{Change, ChangeSet};

/// A wire reference to a [`ChangeSet`]: summary, delta, or full content.
///
/// See the [module docs](self) for the negotiation discipline.
/// Serializable so the real-transport runtime (`awr_net`) can frame the
/// negotiation exactly as the sim models it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CsRef {
    /// Digest and cardinality of the sender's set — O(1) on the wire.
    Summary {
        /// The sender's [`ChangeSet::digest`].
        digest: u64,
        /// The sender's [`ChangeSet::len`].
        len: usize,
    },
    /// The changes a peer whose set digests to `base_digest` is missing.
    Delta {
        /// The digest the delta applies on top of.
        base_digest: u64,
        /// The missing changes, in the sender's append order.
        adds: Vec<Change>,
    },
    /// The sender's whole set — the unconditional fallback.
    Full(ChangeSet),
}

impl CsRef {
    /// The O(1) reference: digest and cardinality of `set`.
    pub fn summary(set: &ChangeSet) -> CsRef {
        CsRef::Summary {
            digest: set.digest(),
            len: set.len(),
        }
    }

    /// The cheapest reference that brings a peer whose set digests to
    /// `peer_digest` up to `set`: a [`CsRef::Summary`] when the peer
    /// already matches, a [`CsRef::Delta`] when the sender's journal covers
    /// the gap, and [`CsRef::Full`] otherwise (peer ahead, diverged, or
    /// unknown order). `peer_digest == 0` means "peer has nothing" and
    /// always yields the whole content (as a delta from the empty set).
    pub fn for_peer(set: &ChangeSet, peer_digest: u64) -> CsRef {
        if peer_digest == set.digest() {
            return CsRef::summary(set);
        }
        match set.delta_since(peer_digest) {
            Some(adds) => CsRef::Delta {
                base_digest: peer_digest,
                adds: adds.to_vec(),
            },
            None => CsRef::Full(set.clone()),
        }
    }

    /// The digest of the set this reference describes (for `Delta`, the
    /// digest the receiver ends at after applying the adds on `base`).
    pub fn implied_digest(&self) -> u64 {
        match self {
            CsRef::Summary { digest, .. } => *digest,
            CsRef::Full(set) => set.digest(),
            CsRef::Delta { base_digest, adds } => adds
                .iter()
                .fold(*base_digest, |d, c| d.wrapping_add(change_mix(c))),
        }
    }

    /// Approximate bytes this reference occupies on the wire: a fixed
    /// header per variant plus the packed changes it carries. `Summary` is
    /// constant; `Delta` scales with the gap; `Full` scales with |C|.
    pub fn wire_size(&self) -> usize {
        match self {
            CsRef::Summary { .. } => 24,
            CsRef::Delta { adds, .. } => 24 + adds.len() * std::mem::size_of::<Change>(),
            CsRef::Full(set) => 8 + set.wire_size(),
        }
    }
}

/// What [`ChangeSet::apply_ref`] concluded about the local set relative to
/// the sender's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconcileOutcome {
    /// The local set now provably (w.h.p.) equals the sender's snapshot;
    /// `added` changes were absorbed on the way.
    InSync {
        /// Changes newly inserted by this reconciliation.
        added: usize,
    },
    /// The local set absorbed the reference and is a strict superset of
    /// the sender's snapshot — the *sender* is behind.
    Ahead {
        /// Changes newly inserted by this reconciliation.
        added: usize,
    },
    /// Equality with the sender could not be established from this
    /// reference (summary mismatch, or a delta whose base is not the local
    /// digest). Any delta changes were still absorbed — they are facts
    /// regardless of the failed base — and the local digest is reported so
    /// the sender can answer with a better reference.
    Diverged {
        /// The local digest after absorbing whatever was absorbable.
        local_digest: u64,
        /// The local cardinality after absorption.
        local_len: usize,
        /// Changes newly inserted by this reconciliation.
        added: usize,
    },
}

impl ReconcileOutcome {
    /// Changes newly inserted by the reconciliation.
    pub fn added(&self) -> usize {
        match self {
            ReconcileOutcome::InSync { added }
            | ReconcileOutcome::Ahead { added }
            | ReconcileOutcome::Diverged { added, .. } => *added,
        }
    }

    /// Whether the reconciliation taught the local set anything new.
    pub fn learned(&self) -> bool {
        self.added() > 0
    }
}

impl ChangeSet {
    /// Reconciles this set against a wire reference, absorbing whatever
    /// content the reference carries, and reports where the two replicas
    /// now stand. This is the *receiver* half of the negotiation: see the
    /// [module docs](self) for the full exchange.
    ///
    /// * `Summary` — pure comparison, never mutates.
    /// * `Delta` — applies cleanly when `base_digest` matches the local
    ///   digest ([`ReconcileOutcome::InSync`]); on a base mismatch the adds
    ///   are still inserted (grow-only sets make that always safe) but the
    ///   outcome is [`ReconcileOutcome::Diverged`] so the caller re-asks.
    /// * `Full` — a lattice merge; [`ReconcileOutcome::Ahead`] when the
    ///   local set strictly contains the sender's.
    pub fn apply_ref(&mut self, r: &CsRef) -> ReconcileOutcome {
        match r {
            CsRef::Summary { digest, len } => {
                if self.digest() == *digest && self.len() == *len {
                    ReconcileOutcome::InSync { added: 0 }
                } else {
                    ReconcileOutcome::Diverged {
                        local_digest: self.digest(),
                        local_len: self.len(),
                        added: 0,
                    }
                }
            }
            CsRef::Delta { base_digest, adds } => {
                let clean_base = *base_digest == self.digest();
                let before = self.len();
                for c in adds {
                    self.insert(*c);
                }
                let added = self.len() - before;
                if clean_base {
                    ReconcileOutcome::InSync { added }
                } else {
                    ReconcileOutcome::Diverged {
                        local_digest: self.digest(),
                        local_len: self.len(),
                        added,
                    }
                }
            }
            CsRef::Full(set) => {
                let before = self.len();
                self.merge(set);
                let added = self.len() - before;
                if self.len() == set.len() {
                    ReconcileOutcome::InSync { added }
                } else {
                    ReconcileOutcome::Ahead { added }
                }
            }
        }
    }

    /// Read-only equality test against a wire reference — the accept check
    /// of Algorithm 6 (`C = C_i`) without materializing the sender's set.
    /// Never mutates. Digest-based conclusions hold w.h.p. (≈ 2⁻⁶⁴
    /// collision), the same contract as the digest fast paths in
    /// [`ChangeSet::merge`].
    pub fn matches_ref(&self, r: &CsRef) -> bool {
        match r {
            CsRef::Summary { digest, len } => self.digest() == *digest && self.len() == *len,
            CsRef::Full(set) => self == set,
            CsRef::Delta { adds, .. } => {
                self.digest() == r.implied_digest() && adds.iter().all(|c| self.contains(c))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ratio, ServerId};

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    fn ch(issuer: u32, counter: u64, target: u32, d: &str) -> Change {
        Change::new(s(issuer), counter, s(target), Ratio::dec(d))
    }

    #[test]
    fn summary_roundtrip_in_sync() {
        let a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut b = a.clone();
        assert_eq!(
            b.apply_ref(&CsRef::summary(&a)),
            ReconcileOutcome::InSync { added: 0 }
        );
        assert!(b.matches_ref(&CsRef::summary(&a)));
    }

    #[test]
    fn summary_mismatch_reports_local_digest() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut b = a.clone();
        a.insert(ch(0, 2, 1, "0.1"));
        let out = b.apply_ref(&CsRef::summary(&a));
        assert_eq!(
            out,
            ReconcileOutcome::Diverged {
                local_digest: b.digest(),
                local_len: b.len(),
                added: 0,
            }
        );
        assert!(!b.matches_ref(&CsRef::summary(&a)));
    }

    #[test]
    fn for_peer_picks_cheapest_reference() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let behind = a.clone();
        a.insert(ch(0, 2, 1, "0.1"));
        // Equal peer → summary.
        assert!(matches!(
            CsRef::for_peer(&a, a.digest()),
            CsRef::Summary { .. }
        ));
        // Behind-along-journal peer → delta with exactly the gap.
        match CsRef::for_peer(&a, behind.digest()) {
            CsRef::Delta { base_digest, adds } => {
                assert_eq!(base_digest, behind.digest());
                assert_eq!(adds, vec![ch(0, 2, 1, "0.1")]);
            }
            other => panic!("expected delta, got {other:?}"),
        }
        // Unknown digest → full.
        assert!(matches!(CsRef::for_peer(&a, 0xDEAD_BEEF), CsRef::Full(_)));
        // Empty peer → delta from the empty prefix, carrying everything.
        match CsRef::for_peer(&a, 0) {
            CsRef::Delta { base_digest, adds } => {
                assert_eq!(base_digest, 0);
                assert_eq!(adds.len(), a.len());
            }
            other => panic!("expected full-content delta, got {other:?}"),
        }
    }

    #[test]
    fn delta_applies_cleanly_on_matching_base() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut b = a.clone();
        a.insert(ch(0, 2, 1, "0.1"));
        a.insert(ch(1, 2, 2, "-0.1"));
        let r = CsRef::for_peer(&a, b.digest());
        assert_eq!(b.apply_ref(&r), ReconcileOutcome::InSync { added: 2 });
        assert_eq!(a, b);
        assert_eq!(r.implied_digest(), a.digest());
    }

    #[test]
    fn delta_with_unknown_base_absorbs_but_diverges() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        // b diverged: it knows a change a doesn't.
        let mut b = a.clone();
        b.insert(ch(2, 2, 0, "0.3"));
        a.insert(ch(0, 2, 1, "0.1"));
        let delta = CsRef::Delta {
            base_digest: ChangeSet::uniform_initial(3, Ratio::ONE).digest(),
            adds: vec![ch(0, 2, 1, "0.1")],
        };
        let out = b.apply_ref(&delta);
        // The add is a fact and was kept, but equality is not established.
        assert!(b.contains(&ch(0, 2, 1, "0.1")));
        assert_eq!(
            out,
            ReconcileOutcome::Diverged {
                local_digest: b.digest(),
                local_len: b.len(),
                added: 1,
            }
        );
        let _ = a;
    }

    #[test]
    fn empty_delta_is_in_sync_noop() {
        let mut b = ChangeSet::uniform_initial(2, Ratio::ONE);
        let r = CsRef::Delta {
            base_digest: b.digest(),
            adds: Vec::new(),
        };
        assert_eq!(b.apply_ref(&r), ReconcileOutcome::InSync { added: 0 });
    }

    #[test]
    fn full_merge_detects_ahead_receiver() {
        let base = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut ahead = base.clone();
        ahead.insert(ch(0, 2, 1, "0.1"));
        let out = ahead.apply_ref(&CsRef::Full(base.clone()));
        assert_eq!(out, ReconcileOutcome::Ahead { added: 0 });
        // And a behind receiver converges.
        let mut behind = base;
        let out = behind.apply_ref(&CsRef::Full(ahead.clone()));
        assert_eq!(out, ReconcileOutcome::InSync { added: 1 });
        assert_eq!(behind, ahead);
    }

    #[test]
    fn concurrent_merge_then_delta_falls_back_to_full() {
        // Two replicas extend a common base concurrently: neither digest is
        // in the other's journal, so for_peer degrades to Full, and the
        // lattice merge converges both.
        let base = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut x = base.clone();
        x.insert(ch(0, 2, 1, "0.1"));
        let mut y = base.clone();
        y.insert(ch(2, 2, 0, "-0.1"));
        let to_y = CsRef::for_peer(&x, y.digest());
        assert!(matches!(to_y, CsRef::Full(_)));
        assert_eq!(y.apply_ref(&to_y), ReconcileOutcome::Ahead { added: 1 });
        let to_x = CsRef::for_peer(&y, x.digest());
        assert_eq!(x.apply_ref(&to_x), ReconcileOutcome::InSync { added: 1 });
        assert_eq!(x, y);
    }

    #[test]
    fn matches_ref_on_delta_checks_containment_and_digest() {
        let mut a = ChangeSet::uniform_initial(2, Ratio::ONE);
        let base_digest = a.digest();
        let add = ch(0, 2, 1, "0.2");
        a.insert(add);
        let r = CsRef::Delta {
            base_digest,
            adds: vec![add],
        };
        assert!(a.matches_ref(&r));
        // A set missing the add does not match.
        let b = ChangeSet::uniform_initial(2, Ratio::ONE);
        assert!(!b.matches_ref(&r));
    }

    #[test]
    fn wire_sizes_scale_as_documented() {
        let mut big = ChangeSet::uniform_initial(4, Ratio::ONE);
        for i in 0..100u64 {
            big.insert(ch(0, 2 + i, 1, "0"));
        }
        let summary = CsRef::summary(&big);
        let delta = CsRef::Delta {
            base_digest: 0,
            adds: big.iter().take(3).copied().collect(),
        };
        let full = CsRef::Full(big.clone());
        assert_eq!(summary.wire_size(), 24);
        assert!(delta.wire_size() < full.wire_size());
        assert_eq!(
            full.wire_size(),
            8 + 16 + big.len() * std::mem::size_of::<Change>()
        );
    }
}
