//! The `change` data structure (paper §III).
//!
//! A change is the quadruple `⟨p_i, lc_i, s, Δ⟩`: process `p_i`, at local
//! counter value `lc_i`, changed the weight of server `s` by `Δ`. Changes are
//! the *only* way weights evolve; a server's weight at time `t` is the sum of
//! the deltas of all changes created for it by completed operations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ProcessId, Ratio, ServerId};

/// A single weight change `⟨issuer, counter, target, delta⟩`.
///
/// Two changes with the same `(issuer, counter, target)` are the same
/// logical change; the paper guarantees this by requiring each process to
/// increment its local counter after every reassignment invocation.
///
/// By convention (paper §III) the *weight of the change* is `delta` and the
/// change *is created for* `target`.
///
/// # Examples
///
/// ```
/// use awr_types::{Change, ProcessId, Ratio, ServerId};
///
/// // Initial weight of s1: ⟨s1, 1, s1, 1⟩ completed at time 0.
/// let init = Change::initial(ServerId(0), Ratio::ONE);
/// assert_eq!(init.target, ServerId(0));
/// assert!(!init.is_null());
///
/// // s3 aborts a reassignment of s2: a zero-weight change is created.
/// let aborted = Change::new(ProcessId::Server(ServerId(2)), 2, ServerId(1), Ratio::ZERO);
/// assert!(aborted.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Change {
    /// The process whose reassignment/transfer invocation produced this change.
    pub issuer: ProcessId,
    /// The issuer's local counter at invocation time.
    pub counter: u64,
    /// The server whose weight the change affects.
    pub target: ServerId,
    /// The signed weight delta (zero for aborted/null outcomes).
    pub delta: Ratio,
}

impl Change {
    /// Creates a change `⟨issuer, counter, target, delta⟩`.
    pub fn new(
        issuer: impl Into<ProcessId>,
        counter: u64,
        target: ServerId,
        delta: Ratio,
    ) -> Change {
        Change {
            issuer: issuer.into(),
            counter,
            target,
            delta,
        }
    }

    /// The conventional initial-weight change `⟨s, 1, s, w⟩` completed at
    /// time 0 (paper §III assumes `reassign(s, w)` completes at `t = 0`;
    /// Algorithm 4 line 2 initializes `C = {⟨s, 1, s, 1⟩ | s ∈ S}`).
    pub fn initial(server: ServerId, weight: Ratio) -> Change {
        Change::new(server, 1, server, weight)
    }

    /// Returns `true` if this change has zero weight (an aborted outcome).
    pub fn is_null(&self) -> bool {
        self.delta.is_zero()
    }

    /// The key that identifies the *operation* this change came from.
    pub fn op_key(&self) -> (ProcessId, u64) {
        (self.issuer, self.counter)
    }
}

impl fmt::Debug for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, {}, {}, {:?}⟩",
            self.issuer, self.counter, self.target, self.delta
        )
    }
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The pair of changes produced by a completed `transfer(s_i, s_j, Δ)`
/// (paper §V.A): `⟨s_i, lc, s_i, −Δ'⟩` and `⟨s_i, lc, s_j, Δ'⟩` where `Δ'`
/// is `Δ` for an *effective* transfer and `0` for a *null* one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TransferChanges {
    /// The change debiting the source server.
    pub debit: Change,
    /// The change crediting the destination server.
    pub credit: Change,
}

impl TransferChanges {
    /// Builds the change pair for `transfer(from, to, delta)` issued with
    /// local counter `counter`. `effective == false` produces the null pair.
    pub fn new(from: ServerId, to: ServerId, counter: u64, delta: Ratio, effective: bool) -> Self {
        let d = if effective { delta } else { Ratio::ZERO };
        TransferChanges {
            debit: Change::new(from, counter, from, -d),
            credit: Change::new(from, counter, to, d),
        }
    }

    /// Returns `true` if the transfer moved non-zero weight.
    ///
    /// Both constituent changes are null or both are non-null (P-Validity-I),
    /// so inspecting the debit suffices — mirroring the paper's remark that
    /// returning only `c` in `⟨Complete, c⟩` is enough.
    pub fn is_effective(&self) -> bool {
        !self.debit.is_null()
    }

    /// Both changes, debit first.
    pub fn both(&self) -> [Change; 2] {
        [self.debit, self.credit]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn initial_change_convention() {
        let c = Change::initial(s(3), Ratio::ONE);
        assert_eq!(c.issuer, ProcessId::Server(s(3)));
        assert_eq!(c.counter, 1);
        assert_eq!(c.target, s(3));
        assert_eq!(c.delta, Ratio::ONE);
    }

    #[test]
    fn transfer_pair_effective() {
        let t = TransferChanges::new(s(0), s(1), 2, Ratio::dec("0.25"), true);
        assert!(t.is_effective());
        assert_eq!(t.debit.delta, Ratio::dec("-0.25"));
        assert_eq!(t.credit.delta, Ratio::dec("0.25"));
        assert_eq!(t.debit.target, s(0));
        assert_eq!(t.credit.target, s(1));
        assert_eq!(t.debit.op_key(), t.credit.op_key());
    }

    #[test]
    fn transfer_pair_null() {
        let t = TransferChanges::new(s(0), s(1), 2, Ratio::dec("0.25"), false);
        assert!(!t.is_effective());
        assert!(t.debit.is_null() && t.credit.is_null());
        // Null changes still record who tried what.
        assert_eq!(t.debit.issuer, ProcessId::Server(s(0)));
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = Change::new(s(0), 2, s(0), Ratio::dec("1.5"));
        assert_eq!(format!("{c}"), "⟨s1, 2, s1, 3/2⟩");
    }

    #[test]
    fn changes_order_deterministically() {
        let a = Change::new(s(0), 1, s(0), Ratio::ONE);
        let b = Change::new(s(0), 2, s(0), Ratio::ONE);
        let c = Change::new(s(1), 1, s(1), Ratio::ONE);
        let mut v = vec![c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }
}
