//! Exact rational arithmetic for server weights.
//!
//! The paper manipulates real-valued weights such as `0.5`, `0.4`, and
//! `(n-1)/2f`, and all of its safety properties (Integrity, P-Integrity,
//! RP-Integrity) are *strict* inequalities whose violation must be detected
//! exactly. Binary floating point cannot represent `0.1` or `0.7` and would
//! make boundary cases (e.g. the Algorithm 1 construction where the f
//! heaviest servers reach *exactly* half the total weight) flaky.
//!
//! [`Ratio`] is a normalized `i128 / i128` rational: always in lowest terms
//! with a strictly positive denominator, so structural equality coincides
//! with numeric equality and `Ord` is total.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An exact rational number used for weights and weight deltas.
///
/// Invariants (maintained by every constructor and operation):
/// * the denominator is strictly positive;
/// * numerator and denominator are coprime;
/// * zero is represented as `0/1`.
///
/// # Examples
///
/// ```
/// use awr_types::Ratio;
///
/// let half = Ratio::new(1, 2);
/// let fifth = Ratio::new(2, 10); // normalized to 1/5
/// assert_eq!(fifth, Ratio::new(1, 5));
/// assert_eq!(half + fifth, Ratio::new(7, 10));
/// assert!(half > fifth);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers (Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The additive identity, `0/1`.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The multiplicative identity, `1/1`.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a ratio `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use awr_types::Ratio;
    /// assert_eq!(Ratio::new(-4, -8), Ratio::new(1, 2));
    /// assert_eq!(Ratio::new(3, -6), Ratio::new(-1, 2));
    /// ```
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "ratio denominator must be non-zero");
        if num == 0 {
            return Ratio::ZERO;
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(num as i128, den as i128);
        Ratio {
            num: sign * (num as i128 / g),
            den: den as i128 / g,
        }
    }

    /// Creates an integer-valued ratio `n / 1`.
    pub fn integer(n: i64) -> Ratio {
        Ratio {
            num: n as i128,
            den: 1,
        }
    }

    /// Parses a decimal literal such as `"0.25"`, `"-1.5"`, or `"3"` exactly.
    ///
    /// This is the recommended way to write the paper's decimal constants:
    /// `Ratio::dec("0.1")` is exactly one tenth.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid decimal literal. Use [`Ratio::from_str`]
    /// for a fallible variant.
    pub fn dec(s: &str) -> Ratio {
        s.parse()
            .unwrap_or_else(|e| panic!("invalid decimal literal {s:?}: {e}"))
    }

    /// The numerator of the normalized representation.
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator of the normalized representation (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Lossy conversion to `f64`, for display and plotting only.
    ///
    /// Never use the result in a safety check; compare [`Ratio`]s directly.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `self / 2`, used pervasively for quorum thresholds (`W_S / 2`).
    pub fn half(&self) -> Ratio {
        Ratio::new(self.num, self.den * 2)
    }

    /// The minimum of two ratios.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two ratios.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Checked addition; `None` on i128 overflow.
    pub fn checked_add(self, rhs: Ratio) -> Option<Ratio> {
        let num = self
            .num
            .checked_mul(rhs.den)?
            .checked_add(rhs.num.checked_mul(self.den)?)?;
        let den = self.den.checked_mul(rhs.den)?;
        Some(Ratio::new(num, den))
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            return write!(f, "{}", self.num);
        }
        // Render exactly when the denominator is 2^a * 5^b, else as fraction.
        let mut d = self.den;
        while d % 2 == 0 {
            d /= 2;
        }
        while d % 5 == 0 {
            d /= 5;
        }
        if d == 1 {
            // Finite decimal expansion: find the smallest 10^k divisible by den.
            let mut scale: i128 = 1;
            let mut digits = 0u32;
            while scale % self.den != 0 && digits <= 38 {
                scale *= 10;
                digits += 1;
            }
            if scale % self.den == 0 {
                let scaled = self.num * (scale / self.den);
                let sign = if scaled < 0 { "-" } else { "" };
                let mag = scaled.unsigned_abs();
                let int = mag / scale.unsigned_abs();
                let frac = mag % scale.unsigned_abs();
                if digits == 0 {
                    return write!(f, "{sign}{int}");
                }
                let frac_str = format!("{:0width$}", frac, width = digits as usize);
                return write!(f, "{sign}{int}.{frac_str}");
            }
        }
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    message: String,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ratio: {}", self.message)
    }
}

impl std::error::Error for ParseRatioError {}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"3"`, `"-0.25"`, or `"7/10"` exactly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseRatioError {
                message: "empty string".into(),
            });
        }
        if let Some((n, d)) = s.split_once('/') {
            let num: i128 = n.trim().parse().map_err(|e| ParseRatioError {
                message: format!("bad numerator {n:?}: {e}"),
            })?;
            let den: i128 = d.trim().parse().map_err(|e| ParseRatioError {
                message: format!("bad denominator {d:?}: {e}"),
            })?;
            if den == 0 {
                return Err(ParseRatioError {
                    message: "zero denominator".into(),
                });
            }
            return Ok(Ratio::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.starts_with('-');
            let int_digits = int_part.trim_start_matches(['-', '+']);
            let int: i128 = if int_digits.is_empty() {
                0
            } else {
                int_digits.parse().map_err(|e| ParseRatioError {
                    message: format!("bad integer part {int_part:?}: {e}"),
                })?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRatioError {
                    message: format!("bad fractional part {frac_part:?}"),
                });
            }
            let frac: i128 = frac_part.parse().map_err(|e| ParseRatioError {
                message: format!("bad fractional part {frac_part:?}: {e}"),
            })?;
            let scale =
                10i128
                    .checked_pow(frac_part.len() as u32)
                    .ok_or_else(|| ParseRatioError {
                        message: "too many fractional digits".into(),
                    })?;
            let mag = Ratio::new(int * scale + frac, scale);
            return Ok(if negative { -mag } else { mag });
        }
        let num: i128 = s.parse().map_err(|e| ParseRatioError {
            message: format!("bad integer {s:?}: {e}"),
        })?;
        Ok(Ratio::new(num, 1))
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Same denominator (always the case for integers, and the common
        // case on the weight hot path): compare numerators directly.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // den > 0 always, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Ratio {
    /// Shared fast-path addition: when the denominators already match, skip
    /// the cross-multiplications and renormalize against the single shared
    /// denominator (for integers this skips the gcd entirely). Weight sums
    /// add long runs of same-denominator deltas, so this is the common case
    /// on the quorum-check hot path.
    #[inline]
    fn add_impl(self, rhs: Ratio) -> Ratio {
        if self.num == 0 {
            return rhs;
        }
        if rhs.num == 0 {
            return self;
        }
        if self.den == rhs.den {
            let num = self.num + rhs.num;
            if self.den == 1 {
                return Ratio { num, den: 1 };
            }
            if num == 0 {
                return Ratio::ZERO;
            }
            let g = gcd(num.unsigned_abs() as i128, self.den);
            return Ratio {
                num: num / g,
                den: self.den / g,
            };
        }
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        self.add_impl(rhs)
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self.add_impl(-rhs)
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "division by zero ratio");
        Ratio::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |acc, r| acc + r)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |acc, r| acc + *r)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::integer(n)
    }
}

impl From<u32> for Ratio {
    fn from(n: u32) -> Ratio {
        Ratio::integer(n as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, 4), Ratio::new(1, -2));
        assert_eq!(Ratio::new(0, 7).denom(), 1);
        assert_eq!(Ratio::new(-6, -9), Ratio::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
        assert_eq!(a.half(), Ratio::new(1, 4));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(7, 10) < Ratio::new(3, 4));
        let mut v = [Ratio::new(3, 4), Ratio::ZERO, Ratio::new(-1, 5)];
        v.sort();
        assert_eq!(v[0], Ratio::new(-1, 5));
        assert_eq!(v[2], Ratio::new(3, 4));
    }

    #[test]
    fn decimal_parsing() {
        assert_eq!(Ratio::dec("0.5"), Ratio::new(1, 2));
        assert_eq!(Ratio::dec("0.1"), Ratio::new(1, 10));
        assert_eq!(Ratio::dec("-1.25"), Ratio::new(-5, 4));
        assert_eq!(Ratio::dec("3"), Ratio::integer(3));
        assert_eq!(Ratio::dec("7/10"), Ratio::new(7, 10));
        assert_eq!(Ratio::dec(".5"), Ratio::new(1, 2));
        assert!("abc".parse::<Ratio>().is_err());
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("1.x".parse::<Ratio>().is_err());
        assert!("".parse::<Ratio>().is_err());
    }

    #[test]
    fn display_decimal() {
        assert_eq!(Ratio::new(1, 2).to_string(), "0.5");
        assert_eq!(Ratio::new(7, 10).to_string(), "0.7");
        assert_eq!(Ratio::new(-5, 4).to_string(), "-1.25");
        assert_eq!(Ratio::integer(3).to_string(), "3");
        assert_eq!(Ratio::new(1, 3).to_string(), "1/3");
    }

    #[test]
    fn sum_iterator() {
        let total: Ratio = (1..=4).map(Ratio::integer).sum();
        assert_eq!(total, Ratio::integer(10));
        let rs = [Ratio::new(1, 2), Ratio::new(1, 2)];
        let total: Ratio = rs.iter().sum();
        assert_eq!(total, Ratio::ONE);
    }

    #[test]
    fn paper_constants_are_exact() {
        // Algorithm 1 boundary: f*(n-1)/(2f) + 0.5 == n/2 exactly.
        let n = 7i64;
        let f = 3i64;
        let wf0 = Ratio::integer(f) * (Ratio::integer(n - 1) / Ratio::integer(2 * f));
        let after = wf0 + Ratio::dec("0.5");
        assert_eq!(after, Ratio::integer(n).half());
    }

    #[test]
    fn to_f64_is_close() {
        assert!((Ratio::new(1, 3).to_f64() - 0.333_333).abs() < 1e-3);
    }

    #[test]
    fn checked_add_overflow() {
        let big = Ratio::new(i128::MAX / 2, 1);
        assert!(big.checked_add(big).is_none() || big.checked_add(big).is_some());
        // Small values never overflow.
        assert_eq!(
            Ratio::new(1, 3).checked_add(Ratio::new(1, 6)),
            Some(Ratio::new(1, 2))
        );
    }
}
