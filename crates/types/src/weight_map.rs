//! Dense per-server weight vectors.
//!
//! A [`WeightMap`] is the materialized view of a [`crate::ChangeSet`] at a
//! point in time: one [`Ratio`] per server. It is the input to every quorum
//! computation and integrity check.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::{Ratio, ServerId};

/// A dense map from [`ServerId`] to weight.
///
/// # Examples
///
/// ```
/// use awr_types::{Ratio, ServerId, WeightMap};
///
/// let w = WeightMap::uniform(4, Ratio::ONE);
/// assert_eq!(w.total(), Ratio::integer(4));
/// assert_eq!(w[ServerId(2)], Ratio::ONE);
/// assert_eq!(w.top_f_sum(1), Ratio::ONE);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMap {
    weights: Vec<Ratio>,
}

impl WeightMap {
    /// A map of `n` servers all weighing `w`.
    pub fn uniform(n: usize, w: Ratio) -> WeightMap {
        WeightMap {
            weights: vec![w; n],
        }
    }

    /// Builds a map by evaluating `f` on every server id.
    pub fn from_fn(n: usize, f: impl FnMut(ServerId) -> Ratio) -> WeightMap {
        WeightMap {
            weights: ServerId::all(n).map(f).collect(),
        }
    }

    /// Builds a map from an explicit vector (index = server index).
    pub fn from_vec(weights: Vec<Ratio>) -> WeightMap {
        WeightMap { weights }
    }

    /// Parses decimal literals: `WeightMap::dec(&["1.6", "1.4", "0.8"])`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid literal (see [`Ratio::dec`]).
    pub fn dec(weights: &[&str]) -> WeightMap {
        WeightMap {
            weights: weights.iter().map(|s| Ratio::dec(s)).collect(),
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the map has no servers.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight of server `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn weight(&self, s: ServerId) -> Ratio {
        self.weights[s.index()]
    }

    /// Fallible lookup.
    pub fn get(&self, s: ServerId) -> Option<Ratio> {
        self.weights.get(s.index()).copied()
    }

    /// Sets the weight of server `s`.
    pub fn set(&mut self, s: ServerId, w: Ratio) {
        self.weights[s.index()] = w;
    }

    /// Adds `delta` to the weight of server `s`.
    pub fn add(&mut self, s: ServerId, delta: Ratio) {
        self.weights[s.index()] += delta;
    }

    /// Total weight `W_S`.
    pub fn total(&self) -> Ratio {
        self.weights.iter().sum()
    }

    /// Sum of the weights of a subset of servers.
    pub fn sum_of<'a>(&self, servers: impl IntoIterator<Item = &'a ServerId>) -> Ratio {
        servers.into_iter().map(|s| self.weight(*s)).sum()
    }

    /// Sum of the `f` greatest weights — the left-hand side of Property 1.
    ///
    /// O(n) expected via quickselect partitioning rather than a full
    /// O(n log n) sort; `integrity_holds` calls this on every reassignment
    /// step, so the constant matters.
    pub fn top_f_sum(&self, f: usize) -> Ratio {
        if f == 0 {
            return Ratio::ZERO;
        }
        if f >= self.weights.len() {
            return self.total();
        }
        let mut scratch = self.weights.clone();
        let (top, fth, _) = scratch.select_nth_unstable_by(f - 1, |a, b| b.cmp(a));
        top.iter().sum::<Ratio>() + *fth
    }

    /// The servers holding the `f` greatest weights (ties broken by lower
    /// index first, deterministically).
    pub fn top_f_servers(&self, f: usize) -> Vec<ServerId> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| self.weights[b].cmp(&self.weights[a]).then(a.cmp(&b)));
        idx.into_iter()
            .take(f)
            .map(|i| ServerId(i as u32))
            .collect()
    }

    /// Minimum weight across servers.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty.
    pub fn min_weight(&self) -> Ratio {
        *self.weights.iter().min().expect("empty weight map")
    }

    /// Maximum weight across servers.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty.
    pub fn max_weight(&self) -> Ratio {
        *self.weights.iter().max().expect("empty weight map")
    }

    /// Iterates `(server, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, Ratio)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| (ServerId(i as u32), *w))
    }

    /// The underlying vector, index = server index.
    pub fn as_slice(&self) -> &[Ratio] {
        &self.weights
    }
}

impl Index<ServerId> for WeightMap {
    type Output = Ratio;
    fn index(&self, s: ServerId) -> &Ratio {
        &self.weights[s.index()]
    }
}

impl fmt::Debug for WeightMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|(s, w)| (s.to_string(), w)))
            .finish()
    }
}

impl fmt::Display for WeightMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Ratio> for WeightMap {
    fn from_iter<I: IntoIterator<Item = Ratio>>(iter: I) -> WeightMap {
        WeightMap {
            weights: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_lookup() {
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        assert_eq!(w.len(), 7);
        assert_eq!(w.total(), Ratio::integer(7));
        assert_eq!(w[ServerId(0)], Ratio::dec("1.6"));
        assert_eq!(w.get(ServerId(7)), None);
    }

    #[test]
    fn top_f() {
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        assert_eq!(w.top_f_sum(2), Ratio::integer(3));
        assert_eq!(w.top_f_servers(2), vec![ServerId(0), ServerId(1)]);
        // Ties broken deterministically by index.
        let u = WeightMap::uniform(4, Ratio::ONE);
        assert_eq!(u.top_f_servers(2), vec![ServerId(0), ServerId(1)]);
    }

    #[test]
    fn mutation() {
        let mut w = WeightMap::uniform(3, Ratio::ONE);
        w.add(ServerId(0), Ratio::dec("0.25"));
        w.set(ServerId(2), Ratio::dec("0.5"));
        assert_eq!(w[ServerId(0)], Ratio::dec("1.25"));
        assert_eq!(w.total(), Ratio::dec("2.75"));
        assert_eq!(w.min_weight(), Ratio::dec("0.5"));
        assert_eq!(w.max_weight(), Ratio::dec("1.25"));
    }

    #[test]
    fn sum_of_subset() {
        let w = WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"]);
        let q = [ServerId(0), ServerId(1), ServerId(2)];
        assert_eq!(w.sum_of(&q), Ratio::dec("3.75"));
    }

    #[test]
    fn display() {
        let w = WeightMap::dec(&["1", "0.5"]);
        assert_eq!(w.to_string(), "[1, 0.5]");
    }
}
