//! # awr-types — core data types for asynchronous weight reassignment
//!
//! Foundation types shared by every crate in the `awr` workspace, a
//! reproduction of *“How Hard is Asynchronous Weight Reassignment?”*
//! (Heydari, Silvestre, Bessani — ICDCS 2023):
//!
//! * [`Ratio`] — exact rational arithmetic for weights. All of the paper's
//!   safety properties are strict inequalities over reals; exact arithmetic
//!   makes the boundary cases (e.g. the Algorithm 1 construction that lands
//!   *exactly* on `W_S / 2`) decidable rather than float-flaky.
//! * [`ServerId`], [`ClientId`], [`ProcessId`] — the two process classes of
//!   the system model (§II).
//! * [`Change`], [`TransferChanges`] — the change quadruple `⟨p, lc, s, Δ⟩`
//!   (§III) and the debit/credit pair of a pairwise transfer (§V).
//! * [`ChangeSet`] — grow-only sets of changes (`C_{s,t}`) with weight
//!   accounting; the union-semilattice every protocol converges on.
//! * [`sync`] — [`CsRef`] wire references (summary / delta / full) and the
//!   reconciliation API that lets protocols ship an O(1) digest instead of
//!   the whole set.
//! * [`WeightMap`] — dense per-server weight vectors for quorum math.
//! * [`Tag`], [`TaggedValue`] — multi-writer ABD tags (§VII).
//!
//! # Examples
//!
//! ```
//! use awr_types::{Change, ChangeSet, Ratio, ServerId};
//!
//! // A 7-server system with uniform initial weight 1 (Fig. 1 setting).
//! let mut c = ChangeSet::uniform_initial(7, Ratio::ONE);
//!
//! // s4 transfers 0.25 to s1 (as the restricted pairwise protocol would).
//! c.insert(Change::new(ServerId(3), 2, ServerId(3), Ratio::dec("-0.25")));
//! c.insert(Change::new(ServerId(3), 2, ServerId(0), Ratio::dec("0.25")));
//!
//! assert_eq!(c.server_weight(ServerId(0)), Ratio::dec("1.25"));
//! assert_eq!(c.total_weight(7), Ratio::integer(7)); // pairwise ⇒ constant total
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod change;
mod change_set;
mod ids;
mod ratio;
pub mod sync;
mod tag;
mod weight_map;

pub use change::{Change, TransferChanges};
pub use change_set::ChangeSet;
pub use ids::{ClientId, ObjectId, ProcessId, ServerId};
pub use ratio::{ParseRatioError, Ratio};
pub use sync::{CsRef, ReconcileOutcome};
pub use tag::{Tag, TaggedValue};
pub use weight_map::WeightMap;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ratio_strategy() -> impl Strategy<Value = Ratio> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Ratio::new(n, d))
    }

    proptest! {
        #[test]
        fn ratio_add_commutative(a in ratio_strategy(), b in ratio_strategy()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn ratio_add_associative(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn ratio_additive_inverse(a in ratio_strategy()) {
            prop_assert_eq!(a + (-a), Ratio::ZERO);
            prop_assert_eq!(a - a, Ratio::ZERO);
        }

        #[test]
        fn ratio_mul_distributes(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn ratio_order_total(a in ratio_strategy(), b in ratio_strategy()) {
            let lt = a < b;
            let gt = a > b;
            let eq = a == b;
            prop_assert_eq!(lt as u8 + gt as u8 + eq as u8, 1);
            // Order agrees with f64 approximation away from ties.
            if !eq {
                let (fa, fb) = (a.to_f64(), b.to_f64());
                if (fa - fb).abs() > 1e-9 {
                    prop_assert_eq!(lt, fa < fb);
                }
            }
        }

        #[test]
        fn ratio_parse_roundtrip(a in ratio_strategy()) {
            let s = format!("{}/{}", a.numer(), a.denom());
            prop_assert_eq!(s.parse::<Ratio>().unwrap(), a);
        }

        #[test]
        fn ratio_display_roundtrip(a in ratio_strategy()) {
            let s = a.to_string();
            prop_assert_eq!(s.parse::<Ratio>().unwrap(), a);
        }

        #[test]
        fn ratio_half_doubles_back(a in ratio_strategy()) {
            prop_assert_eq!(a.half() + a.half(), a);
        }
    }

    fn change_strategy() -> impl Strategy<Value = Change> {
        (0u32..8, 1u64..5, 0u32..8, -40i128..40)
            .prop_map(|(i, lc, t, d)| Change::new(ServerId(i), lc, ServerId(t), Ratio::new(d, 10)))
    }

    proptest! {
        #[test]
        fn changeset_union_lattice(
            xs in proptest::collection::vec(change_strategy(), 0..20),
            ys in proptest::collection::vec(change_strategy(), 0..20),
        ) {
            let a: ChangeSet = xs.into_iter().collect();
            let b: ChangeSet = ys.into_iter().collect();
            let u = a.union(&b);
            // join upper bound
            prop_assert!(u.contains_all(&a));
            prop_assert!(u.contains_all(&b));
            // commutative + idempotent
            prop_assert_eq!(&u, &b.union(&a));
            prop_assert_eq!(u.union(&a), u);
        }

        #[test]
        fn changeset_weight_is_sum_of_deltas(
            xs in proptest::collection::vec(change_strategy(), 0..30),
        ) {
            let set: ChangeSet = xs.iter().copied().collect();
            for i in 0..8u32 {
                let s = ServerId(i);
                // Compute expected sum over the deduplicated set.
                let expected: Ratio = set
                    .iter()
                    .filter(|c| c.target == s)
                    .map(|c| c.delta)
                    .sum();
                prop_assert_eq!(set.server_weight(s), expected);
            }
        }

        #[test]
        fn weightmap_top_f_monotone(
            ws in proptest::collection::vec(0i128..100, 1..12),
        ) {
            let wm: WeightMap = ws.iter().map(|&w| Ratio::new(w, 10)).collect();
            let n = wm.len();
            let mut prev = Ratio::ZERO;
            for f in 0..=n {
                let cur = wm.top_f_sum(f);
                prop_assert!(cur >= prev);
                prev = cur;
            }
            prop_assert_eq!(wm.top_f_sum(n), wm.total());
        }
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    fn roundtrip<T>(v: &T)
    where
        T: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + std::fmt::Debug,
    {
        let json = serde_json::to_string(v).expect("serialize");
        let back: T = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(&back, v, "serde round-trip changed the value");
    }

    #[test]
    fn serde_roundtrips() {
        roundtrip(&Ratio::dec("0.7"));
        roundtrip(&Ratio::new(-7, 3));
        roundtrip(&ServerId(3));
        roundtrip(&ClientId(0));
        roundtrip(&ProcessId::Server(ServerId(1)));
        roundtrip(&Change::new(
            ServerId(0),
            2,
            ServerId(1),
            Ratio::dec("0.25"),
        ));
        roundtrip(&ChangeSet::uniform_initial(4, Ratio::ONE));
        roundtrip(&WeightMap::dec(&["1.6", "1.4", "0.8"]));
        roundtrip(&Tag::new(3, ProcessId::Client(ClientId(1))));
        roundtrip(&TaggedValue::new(Tag::bottom(), 42u64));
        roundtrip(&TransferChanges::new(
            ServerId(0),
            ServerId(1),
            2,
            Ratio::dec("0.1"),
            true,
        ));
    }

    #[test]
    fn ratio_display_fromstr_roundtrip_extremes() {
        for s in ["-3", "0", "0.001", "7/10", "-1/3", "123456789.5"] {
            let r = Ratio::dec(s);
            let back: Ratio = r.to_string().parse().unwrap();
            assert_eq!(back, r, "{s}");
        }
    }

    #[test]
    fn change_set_weights_of_mixed_targets() {
        let mut c = ChangeSet::uniform_initial(3, Ratio::ONE);
        // Changes issued by a client (allowed by the general problem).
        c.insert(Change::new(ClientId(0), 2, ServerId(1), Ratio::dec("0.5")));
        assert_eq!(c.server_weight(ServerId(1)), Ratio::dec("1.5"));
        assert_eq!(c.weights(3).total(), Ratio::dec("3.5"));
    }

    #[test]
    fn tag_total_order_never_ties_for_distinct_writers() {
        let a = Tag::new(5, ProcessId::Client(ClientId(0)));
        let b = Tag::new(5, ProcessId::Client(ClientId(1)));
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn tagged_value_default_is_bottom() {
        let t: TaggedValue<u32> = TaggedValue::default();
        assert_eq!(t.tag, Tag::bottom());
        assert!(t.value.is_none());
    }
}
