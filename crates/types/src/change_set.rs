//! Sets of changes and the weights they induce (paper §III).
//!
//! `C_{s,t}` — the set of changes created for server `s` by operations
//! completed at time `t` — only ever grows, and the weight of `s` is the sum
//! of the deltas in it. [`ChangeSet`] is the canonical grow-only
//! (union-semilattice) representation used by every protocol in this
//! repository: servers union what they learn, clients union what they read,
//! and two sets are comparable exactly when one contains the other.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Change, Ratio, ServerId, WeightMap};

/// A grow-only set of [`Change`]s with weight accounting.
///
/// # Examples
///
/// ```
/// use awr_types::{Change, ChangeSet, Ratio, ServerId};
///
/// let mut c = ChangeSet::uniform_initial(3, Ratio::ONE);
/// assert_eq!(c.server_weight(ServerId(0)), Ratio::ONE);
/// assert_eq!(c.total_weight(3), Ratio::integer(3));
///
/// c.insert(Change::new(ServerId(1), 2, ServerId(0), Ratio::dec("0.5")));
/// assert_eq!(c.server_weight(ServerId(0)), Ratio::dec("1.5"));
/// ```
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChangeSet {
    changes: BTreeSet<Change>,
}

impl ChangeSet {
    /// Creates an empty change set.
    pub fn new() -> ChangeSet {
        ChangeSet::default()
    }

    /// The conventional initial set `{⟨s, 1, s, w⟩ | s ∈ S}` with uniform
    /// weight `w` (Algorithm 4 line 2 uses `w = 1`).
    pub fn uniform_initial(n: usize, w: Ratio) -> ChangeSet {
        ServerId::all(n).map(|s| Change::initial(s, w)).collect()
    }

    /// Initial set from per-server weights.
    pub fn from_initial_weights(weights: &WeightMap) -> ChangeSet {
        weights
            .iter()
            .map(|(s, w)| Change::initial(s, w))
            .collect()
    }

    /// Inserts a change; returns `true` if it was new.
    pub fn insert(&mut self, c: Change) -> bool {
        self.changes.insert(c)
    }

    /// Unions another set into this one (the lattice join).
    pub fn merge(&mut self, other: &ChangeSet) {
        for c in &other.changes {
            self.changes.insert(*c);
        }
    }

    /// Returns the union of the two sets without mutating either.
    pub fn union(&self, other: &ChangeSet) -> ChangeSet {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Changes in `self` but not `other`.
    pub fn difference(&self, other: &ChangeSet) -> Vec<Change> {
        self.changes.difference(&other.changes).copied().collect()
    }

    /// Returns `true` if `self` contains every change in `other`.
    pub fn contains_all(&self, other: &ChangeSet) -> bool {
        other.changes.is_subset(&self.changes)
    }

    /// Returns `true` if the specific change is present.
    pub fn contains(&self, c: &Change) -> bool {
        self.changes.contains(c)
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Returns `true` if no changes are present.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Iterates over all changes in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Change> {
        self.changes.iter()
    }

    /// All changes created for server `s` (the `get_changes(s)` of
    /// Algorithm 4 line 6).
    pub fn changes_for(&self, s: ServerId) -> impl Iterator<Item = &Change> {
        self.changes.iter().filter(move |c| c.target == s)
    }

    /// The subset of changes created for `s`, as an owned set.
    pub fn restricted_to(&self, s: ServerId) -> ChangeSet {
        self.changes_for(s).copied().collect()
    }

    /// The weight of server `s` induced by this set:
    /// `W_s = Σ_{⟨*,*,s,Δ⟩ ∈ C} Δ`.
    pub fn server_weight(&self, s: ServerId) -> Ratio {
        self.changes_for(s).map(|c| c.delta).sum()
    }

    /// The weight of a set of servers `A`: `W_A = Σ_{s ∈ A} W_s`.
    pub fn group_weight<'a>(&self, servers: impl IntoIterator<Item = &'a ServerId>) -> Ratio {
        servers
            .into_iter()
            .map(|s| self.server_weight(*s))
            .sum()
    }

    /// Total weight of an `n`-server system under this set.
    pub fn total_weight(&self, n: usize) -> Ratio {
        ServerId::all(n).map(|s| self.server_weight(s)).sum()
    }

    /// Materializes the full weight map of an `n`-server system.
    pub fn weights(&self, n: usize) -> WeightMap {
        WeightMap::from_fn(n, |s| self.server_weight(s))
    }

    /// Returns `true` if a change issued by `(issuer, counter)` targeting `s`
    /// is present — the completion test of Definition 2.
    pub fn has_op_for(&self, issuer: crate::ProcessId, counter: u64, target: ServerId) -> bool {
        self.changes
            .iter()
            .any(|c| c.issuer == issuer && c.counter == counter && c.target == target)
    }

    /// A compact content digest for cheap comparison in message headers.
    ///
    /// Equal sets have equal digests; unequal sets collide with negligible
    /// probability. Protocol code must still fall back to full comparison on
    /// digest equality when correctness depends on it.
    pub fn digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for c in &self.changes {
            c.hash(&mut h);
        }
        self.changes.len().hash(&mut h);
        h.finish()
    }
}

impl fmt::Debug for ChangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.changes.iter()).finish()
    }
}

impl FromIterator<Change> for ChangeSet {
    fn from_iter<I: IntoIterator<Item = Change>>(iter: I) -> ChangeSet {
        ChangeSet {
            changes: iter.into_iter().collect(),
        }
    }
}

impl Extend<Change> for ChangeSet {
    fn extend<I: IntoIterator<Item = Change>>(&mut self, iter: I) {
        self.changes.extend(iter);
    }
}

impl<'a> IntoIterator for &'a ChangeSet {
    type Item = &'a Change;
    type IntoIter = std::collections::btree_set::Iter<'a, Change>;
    fn into_iter(self) -> Self::IntoIter {
        self.changes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    #[test]
    fn uniform_initial_weights() {
        let c = ChangeSet::uniform_initial(4, Ratio::ONE);
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            assert_eq!(c.server_weight(s(i)), Ratio::ONE);
        }
        assert_eq!(c.total_weight(4), Ratio::integer(4));
    }

    #[test]
    fn weight_accumulates() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        c.insert(Change::new(s(0), 2, s(0), Ratio::dec("-0.25")));
        c.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.25")));
        assert_eq!(c.server_weight(s(0)), Ratio::dec("0.75"));
        assert_eq!(c.server_weight(s(1)), Ratio::dec("1.25"));
        // Pairwise transfers preserve the total.
        assert_eq!(c.total_weight(2), Ratio::integer(2));
    }

    #[test]
    fn null_changes_do_not_affect_weight() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        c.insert(Change::new(s(1), 2, s(0), Ratio::ZERO));
        assert_eq!(c.server_weight(s(0)), Ratio::ONE);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn merge_is_union() {
        let mut a = ChangeSet::uniform_initial(2, Ratio::ONE);
        let mut b = a.clone();
        a.insert(Change::new(s(0), 2, s(0), Ratio::dec("0.5")));
        b.insert(Change::new(s(1), 2, s(1), Ratio::dec("0.5")));
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        assert!(u.contains_all(&a) && u.contains_all(&b));
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn merge_is_idempotent_commutative_associative() {
        let base = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut x = base.clone();
        x.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.1")));
        let mut y = base.clone();
        y.insert(Change::new(s(2), 2, s(0), Ratio::dec("-0.1")));

        assert_eq!(x.union(&x), x); // idempotent
        assert_eq!(x.union(&y), y.union(&x)); // commutative
        let z = base.clone();
        assert_eq!(x.union(&y).union(&z), x.union(&y.union(&z))); // associative
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut c = ChangeSet::new();
        let ch = Change::new(s(0), 1, s(0), Ratio::ONE);
        assert!(c.insert(ch));
        assert!(!c.insert(ch));
        assert_eq!(c.len(), 1);
        assert_eq!(c.server_weight(s(0)), Ratio::ONE);
    }

    #[test]
    fn restricted_to_single_server() {
        let mut c = ChangeSet::uniform_initial(3, Ratio::ONE);
        c.insert(Change::new(s(1), 2, s(0), Ratio::dec("0.5")));
        let r = c.restricted_to(s(0));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|ch| ch.target == s(0)));
        assert_eq!(r.server_weight(s(0)), Ratio::dec("1.5"));
    }

    #[test]
    fn completion_test() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        let issuer = ProcessId::Server(s(1));
        assert!(!c.has_op_for(issuer, 2, s(0)));
        c.insert(Change::new(s(1), 2, s(0), Ratio::ZERO));
        assert!(c.has_op_for(issuer, 2, s(0)));
    }

    #[test]
    fn digest_distinguishes_and_matches() {
        let a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let b = ChangeSet::uniform_initial(3, Ratio::ONE);
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.insert(Change::new(s(0), 2, s(0), Ratio::dec("0.5")));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn group_weight() {
        let c = ChangeSet::uniform_initial(5, Ratio::ONE);
        let group = [s(0), s(1), s(2)];
        assert_eq!(c.group_weight(&group), Ratio::integer(3));
    }
}
