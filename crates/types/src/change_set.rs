//! Sets of changes and the weights they induce (paper §III).
//!
//! `C_{s,t}` — the set of changes created for server `s` by operations
//! completed at time `t` — only ever grows, and the weight of `s` is the sum
//! of the deltas in it. [`ChangeSet`] is the canonical grow-only
//! (union-semilattice) representation used by every protocol in this
//! repository: servers union what they learn, clients union what they read,
//! and two sets are comparable exactly when one contains the other.
//!
//! # Performance model
//!
//! Change sets ride on every protocol message (clients attach their `C` to
//! every `R`/`W`, servers echo theirs on rejection), and every quorum check
//! re-reads weights — so this type is the hottest data structure in the
//! repository. It is engineered around two ideas:
//!
//! 1. **Incremental accounting.** The per-server weight sums, the total
//!    weight, and a content digest are maintained on every mutation, so
//!    [`ChangeSet::server_weight`] and [`ChangeSet::total_weight`] are O(1)
//!    and [`ChangeSet::weights`] is O(n), instead of the O(|C|) scans a raw
//!    set would need.
//! 2. **Copy-on-write sharing.** The storage lives behind an
//!    [`Arc`]: `clone()` — the clone-onto-every-message pattern of
//!    Algorithms 3–6 — is a reference-count bump, and mutation goes through
//!    [`Arc::make_mut`], deep-copying only when the storage is actually
//!    shared. Clones that are never mutated (the overwhelming steady-state
//!    case in quorum rounds) never copy.
//!
//! # Cached invariants
//!
//! For every reachable `ChangeSet` the following hold (checked exhaustively
//! by the `cached_accounting_matches_rescan` differential property test):
//!
//! * `weights[s] == Σ {c.delta | c ∈ changes, c.target == s}` for every
//!   server `s < weights.len()`, and `weights.len()` is exactly
//!   `1 + max(c.target)` (zero when empty);
//! * `total == Σ {c.delta | c ∈ changes}`;
//! * `digest == Σ {mix(c) | c ∈ changes}` (wrapping), a commutative
//!   combination of per-change SipHash values, so it is order-insensitive
//!   and updatable in O(1) per insert;
//! * `journal` holds a *suffix* of the changes in the order this replica
//!   learned them — every change exactly once until
//!   [`ChangeSet::compact_journal`] checkpoints and truncates a prefix
//!   (whose digest is folded into `checkpoint`) — so
//!   [`ChangeSet::delta_since`] can roll the digest back to any *retained*
//!   historical prefix; and `by_target[s]` / `target_digests[s]` hold the
//!   per-target changes and digests independently of the journal (so
//!   [`ChangeSet::changes_for`], [`ChangeSet::restricted_to`], and
//!   [`ChangeSet::target_digest`] avoid O(|C|) scans and survive
//!   compaction).
//!
//! Equal sets therefore always have equal digests; *unequal* sets collide
//! with probability ≈ 2⁻⁶⁴. Fast paths that conclude *inequality* from a
//! digest mismatch (with equal cardinalities) are exact; the one place a
//! digest match short-circuits work ([`ChangeSet::merge`] of
//! equal-cardinality sets) is guarded by a debug assertion and documented
//! below.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{Change, Ratio, ServerId, WeightMap};

/// The owned storage behind a [`ChangeSet`], shared copy-on-write.
#[derive(Clone, Default)]
struct Inner {
    changes: BTreeSet<Change>,
    /// Cached per-server weight sums; index = server index, length =
    /// 1 + highest server index targeted by any change.
    weights: Vec<Ratio>,
    /// Cached sum of every delta in the set.
    total: Ratio,
    /// Commutative content digest (wrapping sum of per-change hashes).
    digest: u64,
    /// Append-order journal: every change exactly once, in the order this
    /// replica learned it — possibly *truncated from the front* by
    /// [`ChangeSet::compact_journal`], in which case `checkpoint` digests
    /// the dropped prefix. Because the digest is a commutative sum, the
    /// digest of any *retained* journal prefix can be recovered by
    /// subtracting the suffix mixes — which is what
    /// [`ChangeSet::delta_since`] exploits to extract wire deltas without
    /// storing historical snapshots.
    journal: Vec<Change>,
    /// The precomputed mix of each journal entry (parallel to `journal`),
    /// so the digest-rollback walk of [`ChangeSet::delta_since`] is
    /// subtraction-only instead of one SipHash per step.
    journal_mixes: Vec<u64>,
    /// Commutative digest of the journal prefix dropped by compaction
    /// (zero while the journal is complete). The digest-rollback walk of
    /// [`ChangeSet::delta_since`] bottoms out here: a `base` digesting a
    /// dropped prefix is no longer recoverable and the caller degrades to
    /// [`crate::sync::CsRef::Full`].
    checkpoint: u64,
    /// Per-target index: `by_target[s]` holds owned copies of the changes
    /// created for server `s`, in append order. Owned copies (rather than
    /// journal indices) keep [`ChangeSet::changes_for`] and
    /// [`ChangeSet::restricted_to`] exact across journal compaction, which
    /// drops journal entries but never set membership. Length tracks
    /// `weights`.
    by_target: Vec<Vec<Change>>,
    /// Per-target commutative digests (same mix as `digest`, restricted to
    /// one target), so a restriction's digest is readable in O(1).
    target_digests: Vec<u64>,
}

/// One change's contribution to the digest: a well-mixed 64-bit hash,
/// combined by wrapping addition so the digest is order-independent.
pub(crate) fn change_mix(c: &Change) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    c.hash(&mut h);
    h.finish() | 1 // never zero, so inserting a change always moves the digest
}

impl Inner {
    /// Applies one *new* change's bookkeeping (the change must already be
    /// known to be absent from `changes` or just inserted).
    fn account(&mut self, c: &Change) {
        let idx = c.target.index();
        if idx >= self.weights.len() {
            self.weights.resize(idx + 1, Ratio::ZERO);
            self.by_target.resize(idx + 1, Vec::new());
            self.target_digests.resize(idx + 1, 0);
        }
        self.weights[idx] += c.delta;
        self.total += c.delta;
        let mix = change_mix(c);
        self.digest = self.digest.wrapping_add(mix);
        self.target_digests[idx] = self.target_digests[idx].wrapping_add(mix);
        self.by_target[idx].push(*c);
        self.journal.push(*c);
        self.journal_mixes.push(mix);
    }

    /// Builds storage from unique changes in the given append order (the
    /// order becomes the journal order).
    fn from_ordered<'a>(changes: impl IntoIterator<Item = &'a Change>) -> Inner {
        let mut inner = Inner::default();
        for c in changes {
            inner.changes.insert(*c);
            inner.account(c);
        }
        inner
    }

    fn from_changes(changes: BTreeSet<Change>) -> Inner {
        let mut inner = Inner::default();
        for c in &changes {
            inner.account(c);
        }
        inner.changes = changes;
        inner
    }
}

/// A grow-only set of [`Change`]s with incremental weight accounting and
/// copy-on-write sharing (see the module docs for the performance model).
///
/// # Examples
///
/// ```
/// use awr_types::{Change, ChangeSet, Ratio, ServerId};
///
/// let mut c = ChangeSet::uniform_initial(3, Ratio::ONE);
/// assert_eq!(c.server_weight(ServerId(0)), Ratio::ONE);
/// assert_eq!(c.total_weight(3), Ratio::integer(3));
///
/// c.insert(Change::new(ServerId(1), 2, ServerId(0), Ratio::dec("0.5")));
/// assert_eq!(c.server_weight(ServerId(0)), Ratio::dec("1.5"));
///
/// // Cloning is a reference-count bump; the clone reads the same cache.
/// let snapshot = c.clone();
/// assert_eq!(snapshot.server_weight(ServerId(0)), Ratio::dec("1.5"));
/// ```
#[derive(Clone, Default)]
pub struct ChangeSet {
    inner: Arc<Inner>,
}

impl ChangeSet {
    /// Creates an empty change set.
    pub fn new() -> ChangeSet {
        ChangeSet::default()
    }

    /// The conventional initial set `{⟨s, 1, s, w⟩ | s ∈ S}` with uniform
    /// weight `w` (Algorithm 4 line 2 uses `w = 1`).
    pub fn uniform_initial(n: usize, w: Ratio) -> ChangeSet {
        ServerId::all(n).map(|s| Change::initial(s, w)).collect()
    }

    /// Initial set from per-server weights.
    pub fn from_initial_weights(weights: &WeightMap) -> ChangeSet {
        weights.iter().map(|(s, w)| Change::initial(s, w)).collect()
    }

    /// Inserts a change; returns `true` if it was new. O(log |C|), plus a
    /// one-off deep copy if the storage is currently shared.
    pub fn insert(&mut self, c: Change) -> bool {
        if self.inner.changes.contains(&c) {
            return false;
        }
        let inner = Arc::make_mut(&mut self.inner);
        inner.changes.insert(c);
        inner.account(&c);
        true
    }

    /// Unions another set into this one (the lattice join).
    ///
    /// Fast paths, in order:
    /// * same storage (`Arc::ptr_eq`) or empty `other` — O(1) no-op;
    /// * empty `self`, or `self ⊂ other` — adopt `other`'s storage
    ///   (reference-count bump), re-establishing sharing;
    /// * equal cardinality and equal digest — O(1) no-op. This is the one
    ///   probabilistic fast path (collision ≈ 2⁻⁶⁴); a debug assertion
    ///   validates it in test builds;
    /// * `other ⊆ self` — subset-scan no-op: no copy, no allocation. This
    ///   is the idempotent-merge steady state of quorum rounds.
    ///
    /// Only when `other` genuinely contains changes `self` lacks does the
    /// merge mutate (copy-on-write), inserting the difference.
    pub fn merge(&mut self, other: &ChangeSet) {
        if Arc::ptr_eq(&self.inner, &other.inner) || other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.inner = Arc::clone(&other.inner);
            return;
        }
        let (sl, ol) = (self.len(), other.len());
        if sl == ol && self.inner.digest == other.inner.digest {
            debug_assert_eq!(
                self.inner.changes, other.inner.changes,
                "digest collision between unequal change sets"
            );
            return;
        }
        if sl <= ol && other.contains_all(self) {
            // self ⊆ other: adopting other's storage makes this — and every
            // later — merge against it O(1) via pointer equality.
            self.inner = Arc::clone(&other.inner);
            return;
        }
        if ol < sl && self.contains_all(other) {
            return;
        }
        let inner = Arc::make_mut(&mut self.inner);
        for c in &other.inner.changes {
            if inner.changes.insert(*c) {
                inner.account(c);
            }
        }
    }

    /// Returns the union of the two sets without mutating either.
    pub fn union(&self, other: &ChangeSet) -> ChangeSet {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Changes in `self` but not `other`.
    pub fn difference(&self, other: &ChangeSet) -> Vec<Change> {
        self.inner
            .changes
            .difference(&other.inner.changes)
            .copied()
            .collect()
    }

    /// Returns `true` if `self` contains every change in `other`.
    ///
    /// O(1) when the sets share storage, when `other` is larger (certain
    /// `false`), or when the cardinalities match but the digests differ
    /// (subset ⟺ equality there, so a digest mismatch is a certain `false`).
    /// Every remaining case — including equal cardinality with matching
    /// digests — pays a subset scan, keeping the positive answer exact.
    pub fn contains_all(&self, other: &ChangeSet) -> bool {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        let (sl, ol) = (self.len(), other.len());
        if ol > sl {
            return false;
        }
        if ol == sl {
            // Same cardinality: containment is equality, and equal sets
            // always have equal digests, so a mismatch is a certain "no".
            if self.inner.digest != other.inner.digest {
                return false;
            }
        }
        other.inner.changes.is_subset(&self.inner.changes)
    }

    /// Returns `true` if the specific change is present.
    pub fn contains(&self, c: &Change) -> bool {
        self.inner.changes.contains(c)
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.inner.changes.len()
    }

    /// Returns `true` if no changes are present.
    pub fn is_empty(&self) -> bool {
        self.inner.changes.is_empty()
    }

    /// Iterates over all changes in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Change> {
        self.inner.changes.iter()
    }

    /// The changes created for server `s`, in append order — the backing
    /// slice of the per-target index (O(1) to obtain).
    fn target_slice(&self, s: ServerId) -> &[Change] {
        self.inner
            .by_target
            .get(s.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All changes created for server `s` (the `get_changes(s)` of
    /// Algorithm 4 line 6). O(|C_s|) via the per-target index, not O(|C|).
    pub fn changes_for(&self, s: ServerId) -> impl Iterator<Item = &Change> {
        self.target_slice(s).iter()
    }

    /// The subset of changes created for `s`, as an owned set. O(|C_s|);
    /// the restriction inherits this set's append order, so deltas between
    /// successive restrictions of the same replica line up.
    pub fn restricted_to(&self, s: ServerId) -> ChangeSet {
        ChangeSet {
            inner: Arc::new(Inner::from_ordered(self.changes_for(s))),
        }
    }

    /// Number of changes created for server `s`. O(1).
    pub fn target_len(&self, s: ServerId) -> usize {
        self.target_slice(s).len()
    }

    /// Commutative digest of the changes created for `s` — equal to
    /// `self.restricted_to(s).digest()` without building the restriction.
    /// O(1).
    pub fn target_digest(&self, s: ServerId) -> u64 {
        self.inner
            .target_digests
            .get(s.index())
            .copied()
            .unwrap_or(0)
    }

    /// The weight of server `s` induced by this set:
    /// `W_s = Σ_{⟨*,*,s,Δ⟩ ∈ C} Δ`. O(1) — reads the cache.
    pub fn server_weight(&self, s: ServerId) -> Ratio {
        self.inner
            .weights
            .get(s.index())
            .copied()
            .unwrap_or(Ratio::ZERO)
    }

    /// The weight of a set of servers `A`: `W_A = Σ_{s ∈ A} W_s`. O(|A|).
    pub fn group_weight<'a>(&self, servers: impl IntoIterator<Item = &'a ServerId>) -> Ratio {
        servers.into_iter().map(|s| self.server_weight(*s)).sum()
    }

    /// Total weight of an `n`-server system under this set. O(1) when every
    /// change targets a server `< n` (the cached grand total applies),
    /// O(n) otherwise.
    pub fn total_weight(&self, n: usize) -> Ratio {
        if self.inner.weights.len() <= n {
            self.inner.total
        } else {
            self.inner.weights[..n].iter().sum()
        }
    }

    /// Materializes the full weight map of an `n`-server system. O(n).
    pub fn weights(&self, n: usize) -> WeightMap {
        WeightMap::from_fn(n, |s| self.server_weight(s))
    }

    /// Returns `true` if a change issued by `(issuer, counter)` targeting `s`
    /// is present — the completion test of Definition 2. O(|C_s|) via the
    /// per-target index.
    pub fn has_op_for(&self, issuer: crate::ProcessId, counter: u64, target: ServerId) -> bool {
        self.changes_for(target)
            .any(|c| c.issuer == issuer && c.counter == counter)
    }

    /// A compact content digest for cheap comparison in message headers,
    /// maintained incrementally (O(1) to read).
    ///
    /// Equal sets have equal digests; unequal sets collide with negligible
    /// probability. Protocol code must still fall back to full comparison on
    /// digest equality when correctness depends on it.
    pub fn digest(&self) -> u64 {
        self.inner.digest
    }

    /// Returns `true` if the two handles share the same storage — the O(1)
    /// witness that the sets are equal without any comparison.
    pub fn shares_storage_with(&self, other: &ChangeSet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The changes this replica appended *after* the historical point at
    /// which its digest was `base` — the wire delta a peer whose set digests
    /// to `base` needs to catch up (see [`crate::sync::CsRef::Delta`]).
    ///
    /// Works by rolling the commutative digest backwards over the
    /// append-order journal: starting from the current digest, suffix mixes
    /// are subtracted until `base` is hit; the remaining suffix *is* the
    /// delta. O(k) where `k` is the delta length — O(1)-ish when the peer is
    /// barely behind, O(|C|) when `base` is not found.
    ///
    /// Returns `None` if no *retained* journal prefix digests to `base`:
    /// the peer is ahead, diverged, followed a different append order, or
    /// sits behind the compaction checkpoint (see
    /// [`ChangeSet::compact_journal`]). Callers fall back to
    /// [`crate::sync::CsRef::Full`]. On an uncompacted set,
    /// `delta_since(0)` always succeeds with the entire journal (the empty
    /// prefix digests to 0); after compaction the walk bottoms out at the
    /// checkpoint digest instead.
    ///
    /// A hit means the peer's *content* equals the prefix only w.h.p.
    /// (digest collision ≈ 2⁻⁶⁴) — the same probabilistic contract as the
    /// digest fast paths in [`ChangeSet::merge`].
    pub fn delta_since(&self, base: u64) -> Option<&[Change]> {
        let journal = &self.inner.journal;
        let mixes = &self.inner.journal_mixes;
        let mut d = self.inner.digest;
        let mut i = journal.len();
        loop {
            if d == base {
                return Some(&journal[i..]);
            }
            if i == 0 {
                return None;
            }
            i -= 1;
            d = d.wrapping_sub(mixes[i]);
        }
    }

    /// Number of journal entries currently retained — equal to
    /// [`ChangeSet::len`] until [`ChangeSet::compact_journal`] drops a
    /// prefix. This, times `size_of::<Change>() + 8`, is the journal's
    /// resident memory: the quantity the soak bench gates as flat.
    pub fn journal_len(&self) -> usize {
        self.inner.journal.len()
    }

    /// Approximate resident bytes of the retained journal (entries plus
    /// their cached mixes).
    pub fn journal_bytes(&self) -> usize {
        self.journal_len() * (std::mem::size_of::<Change>() + std::mem::size_of::<u64>())
    }

    /// Commutative digest of the journal prefix dropped by compaction
    /// (zero while the journal is complete). Peers whose summary digests a
    /// prefix of the dropped region can no longer be served a
    /// [`crate::sync::CsRef::Delta`] and degrade to
    /// [`crate::sync::CsRef::Full`].
    pub fn checkpoint_digest(&self) -> u64 {
        self.inner.checkpoint
    }

    /// The most recent `k` journal entries, oldest first — the suffix a
    /// write-ahead log appends after its last persist point. Callers must
    /// persist before compacting: `k` may not exceed
    /// [`ChangeSet::journal_len`].
    ///
    /// # Panics
    ///
    /// Panics if `k > self.journal_len()`.
    pub fn journal_tail(&self, k: usize) -> &[Change] {
        let len = self.inner.journal.len();
        &self.inner.journal[len - k..]
    }

    /// Checkpoints and truncates the journal to at most `keep` most-recent
    /// entries, folding the dropped prefix into the checkpoint digest.
    /// Returns the number of entries dropped.
    ///
    /// Set membership, weights, the content digest, and the per-target
    /// indexes are all untouched — compaction only narrows what
    /// [`ChangeSet::delta_since`] can reconstruct. A peer whose acked
    /// digest still lands in the retained suffix keeps getting
    /// [`crate::sync::CsRef::Delta`]s; one that has fallen behind the
    /// checkpoint degrades to [`crate::sync::CsRef::Full`], so the
    /// negotiation ladder (and every liveness argument built on it) is
    /// unchanged. Servers key `keep` on an acked watermark: the longest
    /// suffix any tracked peer still needs, floored by the cadence's
    /// minimum retention (see `awr_epoch::CheckpointCadence`).
    pub fn compact_journal(&mut self, keep: usize) -> usize {
        let drop = self.inner.journal.len().saturating_sub(keep);
        if drop == 0 {
            return 0;
        }
        let inner = Arc::make_mut(&mut self.inner);
        for m in &inner.journal_mixes[..drop] {
            inner.checkpoint = inner.checkpoint.wrapping_add(*m);
        }
        inner.journal.drain(..drop);
        inner.journal_mixes.drain(..drop);
        drop
    }

    /// Approximate serialized size in bytes: a fixed header (digest and
    /// length) plus the packed changes. The constant matters less than the
    /// scaling — this is what the simulator's byte metrics charge for a
    /// full change set on the wire.
    pub fn wire_size(&self) -> usize {
        16 + self.len() * std::mem::size_of::<Change>()
    }

    #[cfg(test)]
    pub(crate) fn journal_for_tests(&self) -> &[Change] {
        &self.inner.journal
    }
}

impl PartialEq for ChangeSet {
    fn eq(&self, other: &ChangeSet) -> bool {
        // Shared storage and digest/cardinality mismatches decide in O(1);
        // only equal-digest distinct-storage pairs pay for the full walk.
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        if self.len() != other.len() || self.inner.digest != other.inner.digest {
            return false;
        }
        self.inner.changes == other.inner.changes
    }
}

impl Eq for ChangeSet {}

impl fmt::Debug for ChangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.inner.changes.iter()).finish()
    }
}

impl FromIterator<Change> for ChangeSet {
    fn from_iter<I: IntoIterator<Item = Change>>(iter: I) -> ChangeSet {
        ChangeSet {
            inner: Arc::new(Inner::from_changes(iter.into_iter().collect())),
        }
    }
}

impl Extend<Change> for ChangeSet {
    fn extend<I: IntoIterator<Item = Change>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl<'a> IntoIterator for &'a ChangeSet {
    type Item = &'a Change;
    type IntoIter = std::collections::btree_set::Iter<'a, Change>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.changes.iter()
    }
}

// Serialized as `{"changes": [...]}` — the same shape the seed's derived
// implementation produced — with the caches rebuilt on deserialization.
// Compaction state is *not* carried: a deserialized set has a complete
// journal (in set order) and a zero checkpoint; owners re-compact on their
// own cadence.
impl Serialize for ChangeSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("changes".to_string(), self.inner.changes.to_value())])
    }
}

impl<'de> Deserialize<'de> for ChangeSet {
    fn from_value(v: &serde::Value) -> Result<ChangeSet, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for ChangeSet"))?;
        let changes = BTreeSet::<Change>::from_value(serde::map_get(m, "changes")?)?;
        Ok(ChangeSet {
            inner: Arc::new(Inner::from_changes(changes)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn s(i: u32) -> ServerId {
        ServerId(i)
    }

    /// From-scratch recomputation of every cached quantity.
    fn rescan(set: &ChangeSet) -> (Vec<Ratio>, Ratio, u64) {
        let max = set.iter().map(|c| c.target.index()).max();
        let len = max.map(|m| m + 1).unwrap_or(0);
        let mut weights = vec![Ratio::ZERO; len];
        let mut total = Ratio::ZERO;
        let mut digest = 0u64;
        for c in set.iter() {
            weights[c.target.index()] += c.delta;
            total += c.delta;
            digest = digest.wrapping_add(change_mix(c));
        }
        (weights, total, digest)
    }

    fn assert_caches_exact(set: &ChangeSet) {
        let (weights, total, digest) = rescan(set);
        assert_eq!(set.inner.weights, weights, "per-server cache drifted");
        assert_eq!(set.inner.total, total, "total cache drifted");
        assert_eq!(set.inner.digest, digest, "digest cache drifted");
        assert_journal_exact(set);
    }

    /// The journal and per-target index must mirror the set exactly: the
    /// retained journal is a duplicate-free subset whose length accounts
    /// for every compacted entry, the checkpoint digest plus retained
    /// mixes re-sum to the content digest, per-target slices hold exactly
    /// the set's per-target changes with digests that re-sum from scratch,
    /// and `delta_since` round-trips every *retained* prefix.
    fn assert_journal_exact(set: &ChangeSet) {
        let journal = set.journal_for_tests();
        assert_eq!(journal.len(), set.journal_len());
        assert!(journal.len() <= set.len(), "journal longer than the set");
        let as_set: BTreeSet<Change> = journal.iter().copied().collect();
        assert_eq!(as_set.len(), journal.len(), "journal holds duplicates");
        let model: BTreeSet<Change> = set.iter().copied().collect();
        assert!(as_set.is_subset(&model), "journal membership drifted");
        let mixes: Vec<u64> = journal.iter().map(change_mix).collect();
        assert_eq!(set.inner.journal_mixes, mixes, "journal mixes drifted");
        let resum = mixes
            .iter()
            .fold(set.checkpoint_digest(), |d, m| d.wrapping_add(*m));
        assert_eq!(resum, set.digest(), "checkpoint + retained mixes drifted");
        if set.checkpoint_digest() == 0 {
            assert_eq!(journal.len(), set.len(), "uncompacted journal length");
            assert_eq!(as_set, model, "uncompacted journal membership");
        }
        let n_targets = set.inner.by_target.len();
        assert_eq!(set.inner.weights.len(), n_targets);
        assert_eq!(set.inner.target_digests.len(), n_targets);
        for t in 0..n_targets {
            let s = ServerId(t as u32);
            let expect: BTreeSet<Change> =
                model.iter().filter(|c| c.target == s).copied().collect();
            let indexed: Vec<Change> = set.changes_for(s).copied().collect();
            assert_eq!(
                indexed.len(),
                expect.len(),
                "per-target index cardinality drifted for {s}"
            );
            let indexed_set: BTreeSet<Change> = indexed.iter().copied().collect();
            assert_eq!(indexed_set, expect, "per-target membership drifted for {s}");
            // The retained journal's per-target order must be a suffix of
            // the index's append order (the prefix predates compaction).
            let journal_order: Vec<Change> =
                journal.iter().filter(|c| c.target == s).copied().collect();
            assert_eq!(
                &indexed[indexed.len() - journal_order.len()..],
                journal_order.as_slice(),
                "per-target index out of journal order for {s}"
            );
            let d: u64 = expect
                .iter()
                .fold(0u64, |d, c| d.wrapping_add(change_mix(c)));
            assert_eq!(set.inner.target_digests[t], d, "target digest drifted");
            assert_eq!(set.target_digest(s), d);
            assert_eq!(set.target_len(s), expect.len());
        }
        // delta_since round-trips every retained journal prefix...
        let mut prefix_digest = set.checkpoint_digest();
        for k in 0..=journal.len() {
            assert_eq!(
                set.delta_since(prefix_digest),
                Some(&journal[k..]),
                "delta_since missed prefix {k}"
            );
            if k < journal.len() {
                prefix_digest = prefix_digest.wrapping_add(change_mix(&journal[k]));
            }
        }
        // ...and refuses pre-checkpoint bases once compacted (0 digests
        // the empty prefix, which compaction dropped).
        if set.checkpoint_digest() != 0 && set.digest() != 0 {
            assert_eq!(set.delta_since(0), None, "compacted prefix resurfaced");
        }
    }

    #[test]
    fn uniform_initial_weights() {
        let c = ChangeSet::uniform_initial(4, Ratio::ONE);
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            assert_eq!(c.server_weight(s(i)), Ratio::ONE);
        }
        assert_eq!(c.total_weight(4), Ratio::integer(4));
        assert_caches_exact(&c);
    }

    #[test]
    fn weight_accumulates() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        c.insert(Change::new(s(0), 2, s(0), Ratio::dec("-0.25")));
        c.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.25")));
        assert_eq!(c.server_weight(s(0)), Ratio::dec("0.75"));
        assert_eq!(c.server_weight(s(1)), Ratio::dec("1.25"));
        // Pairwise transfers preserve the total.
        assert_eq!(c.total_weight(2), Ratio::integer(2));
        assert_caches_exact(&c);
    }

    #[test]
    fn null_changes_do_not_affect_weight() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        c.insert(Change::new(s(1), 2, s(0), Ratio::ZERO));
        assert_eq!(c.server_weight(s(0)), Ratio::ONE);
        assert_eq!(c.len(), 3);
        assert_caches_exact(&c);
    }

    #[test]
    fn merge_is_union() {
        let mut a = ChangeSet::uniform_initial(2, Ratio::ONE);
        let mut b = a.clone();
        a.insert(Change::new(s(0), 2, s(0), Ratio::dec("0.5")));
        b.insert(Change::new(s(1), 2, s(1), Ratio::dec("0.5")));
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        assert!(u.contains_all(&a) && u.contains_all(&b));
        a.merge(&b);
        assert_eq!(a, u);
        assert_caches_exact(&a);
        assert_caches_exact(&u);
    }

    #[test]
    fn merge_is_idempotent_commutative_associative() {
        let base = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut x = base.clone();
        x.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.1")));
        let mut y = base.clone();
        y.insert(Change::new(s(2), 2, s(0), Ratio::dec("-0.1")));

        assert_eq!(x.union(&x), x); // idempotent
        assert_eq!(x.union(&y), y.union(&x)); // commutative
        let z = base.clone();
        assert_eq!(x.union(&y).union(&z), x.union(&y.union(&z))); // associative
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut c = ChangeSet::new();
        let ch = Change::new(s(0), 1, s(0), Ratio::ONE);
        assert!(c.insert(ch));
        assert!(!c.insert(ch));
        assert_eq!(c.len(), 1);
        assert_eq!(c.server_weight(s(0)), Ratio::ONE);
        assert_caches_exact(&c);
    }

    #[test]
    fn restricted_to_single_server() {
        let mut c = ChangeSet::uniform_initial(3, Ratio::ONE);
        c.insert(Change::new(s(1), 2, s(0), Ratio::dec("0.5")));
        let r = c.restricted_to(s(0));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|ch| ch.target == s(0)));
        assert_eq!(r.server_weight(s(0)), Ratio::dec("1.5"));
        assert_caches_exact(&r);
    }

    #[test]
    fn completion_test() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        let issuer = ProcessId::Server(s(1));
        assert!(!c.has_op_for(issuer, 2, s(0)));
        c.insert(Change::new(s(1), 2, s(0), Ratio::ZERO));
        assert!(c.has_op_for(issuer, 2, s(0)));
    }

    #[test]
    fn digest_distinguishes_and_matches() {
        let a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let b = ChangeSet::uniform_initial(3, Ratio::ONE);
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.insert(Change::new(s(0), 2, s(0), Ratio::dec("0.5")));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn group_weight() {
        let c = ChangeSet::uniform_initial(5, Ratio::ONE);
        let group = [s(0), s(1), s(2)];
        assert_eq!(c.group_weight(&group), Ratio::integer(3));
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        // Redundant insert does not break sharing.
        assert!(!a.insert(Change::initial(s(0), Ratio::ONE)));
        assert!(a.shares_storage_with(&b));
        // A real mutation copies; the clone is unaffected.
        a.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.5")));
        assert!(!a.shares_storage_with(&b));
        assert_eq!(b.server_weight(s(1)), Ratio::ONE);
        assert_eq!(a.server_weight(s(1)), Ratio::dec("1.5"));
        assert_caches_exact(&a);
        assert_caches_exact(&b);
    }

    #[test]
    fn merge_adopts_superset_storage() {
        let base = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut bigger = base.clone();
        bigger.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.2")));
        let mut lagging = base.clone();
        lagging.merge(&bigger);
        assert_eq!(lagging, bigger);
        assert!(lagging.shares_storage_with(&bigger));
        // Idempotent re-merge is a pointer-equality no-op.
        lagging.merge(&bigger);
        assert!(lagging.shares_storage_with(&bigger));
        assert_caches_exact(&lagging);
    }

    #[test]
    fn merge_subset_into_superset_is_noop() {
        let mut big = ChangeSet::uniform_initial(4, Ratio::ONE);
        big.insert(Change::new(s(0), 2, s(2), Ratio::dec("0.3")));
        let small = ChangeSet::uniform_initial(2, Ratio::ONE);
        let before = big.clone();
        big.merge(&small);
        assert_eq!(big, before);
        assert!(
            big.shares_storage_with(&before),
            "no-op merge must not copy"
        );
    }

    #[test]
    fn merge_overlapping_sets_accounts_difference_only_once() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        a.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.1")));
        let mut b = ChangeSet::uniform_initial(3, Ratio::ONE);
        b.insert(Change::new(s(2), 2, s(1), Ratio::dec("0.2")));
        a.merge(&b);
        assert_eq!(a.server_weight(s(1)), Ratio::dec("1.3"));
        assert_eq!(a.len(), 5);
        assert_caches_exact(&a);
    }

    #[test]
    fn total_weight_ignores_out_of_range_targets() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        c.insert(Change::new(s(0), 2, s(5), Ratio::dec("0.5")));
        // Only servers 0..2 count toward a 2-server system's total.
        assert_eq!(c.total_weight(2), Ratio::integer(2));
        assert_eq!(c.total_weight(6), Ratio::dec("2.5"));
        assert_eq!(c.server_weight(s(5)), Ratio::dec("0.5"));
        assert_eq!(c.server_weight(s(4)), Ratio::ZERO);
        assert_caches_exact(&c);
    }

    /// Differential oracle for the incremental accounting: random
    /// interleavings of `insert` / `merge` / `union` / `restricted_to`
    /// over a pool of sets, each step checked against (a) a plain
    /// `BTreeSet` model — catching any fast path that drops or invents
    /// changes — and (b) a from-scratch recomputation of the weight,
    /// total, and digest caches.
    mod differential {
        use super::*;
        use proptest::prelude::*;

        fn op_strategy() -> impl Strategy<Value = (u8, usize, usize, Change, u32)> {
            (
                0u8..5,
                0usize..3,
                0usize..3,
                (0u32..6, 1u64..5, 0u32..6, -30i128..30).prop_map(|(i, lc, t, d)| {
                    Change::new(ServerId(i), lc, ServerId(t), Ratio::new(d, 10))
                }),
                0u32..6,
            )
        }

        proptest! {
            #[test]
            fn cached_accounting_matches_rescan(
                ops in proptest::collection::vec(op_strategy(), 1..60),
            ) {
                let mut sets: Vec<ChangeSet> =
                    vec![ChangeSet::new(), ChangeSet::uniform_initial(3, Ratio::ONE), ChangeSet::new()];
                let mut models: Vec<BTreeSet<Change>> =
                    sets.iter().map(|s| s.iter().copied().collect()).collect();
                for (op, i, j, change, server) in ops {
                    match op {
                        0 => {
                            let was_new = sets[i].insert(change);
                            prop_assert_eq!(was_new, models[i].insert(change));
                        }
                        1 => {
                            let other = sets[j].clone();
                            sets[i].merge(&other);
                            let other_model = models[j].clone();
                            models[i].extend(other_model);
                        }
                        2 => {
                            let u = sets[i].union(&sets[j]);
                            let model: BTreeSet<Change> =
                                models[i].union(&models[j]).copied().collect();
                            sets[i] = u;
                            models[i] = model;
                        }
                        3 => {
                            let s = ServerId(server);
                            sets[i] = sets[i].restricted_to(s);
                            models[i] = models[i]
                                .iter()
                                .filter(|c| c.target == s)
                                .copied()
                                .collect();
                        }
                        _ => {
                            // Compaction must be invisible to everything
                            // except delta extraction; the model is
                            // untouched on purpose.
                            let before = sets[i].journal_len();
                            let keep = server as usize;
                            let dropped = sets[i].compact_journal(keep);
                            prop_assert_eq!(dropped, before.saturating_sub(keep));
                            prop_assert_eq!(sets[i].journal_len(), before - dropped);
                        }
                    }
                    // (a) The set's content matches the model exactly.
                    let got: BTreeSet<Change> = sets[i].iter().copied().collect();
                    prop_assert_eq!(&got, &models[i]);
                    prop_assert_eq!(sets[i].len(), models[i].len());
                    // (b) Every cached quantity matches a from-scratch scan,
                    // and the journal / per-target index mirror the set.
                    let (weights, total, digest) = super::rescan(&sets[i]);
                    prop_assert_eq!(&sets[i].inner.weights, &weights);
                    prop_assert_eq!(sets[i].inner.total, total);
                    prop_assert_eq!(sets[i].inner.digest, digest);
                    super::assert_journal_exact(&sets[i]);
                    // (c) Public accessors agree with naive recomputation.
                    for srv in 0..6u32 {
                        let naive: Ratio = models[i]
                            .iter()
                            .filter(|c| c.target == ServerId(srv))
                            .map(|c| c.delta)
                            .sum();
                        prop_assert_eq!(sets[i].server_weight(ServerId(srv)), naive);
                    }
                    let naive_total: Ratio = models[i].iter().map(|c| c.delta).sum();
                    prop_assert_eq!(sets[i].total_weight(6), naive_total);
                    prop_assert_eq!(sets[i].weights(6).total(), naive_total);
                }
                // Cross-set equality semantics agree with the models.
                for a in 0..3 {
                    for b in 0..3 {
                        prop_assert_eq!(sets[a] == sets[b], models[a] == models[b]);
                        prop_assert_eq!(
                            sets[a].contains_all(&sets[b]),
                            models[b].is_subset(&models[a])
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compact_journal_preserves_content_and_recent_deltas() {
        let mut c = ChangeSet::uniform_initial(3, Ratio::ONE);
        for lc in 2..12u64 {
            c.insert(Change::new(s(0), lc, s(1), Ratio::new(1, 100)));
        }
        let full = c.clone();
        // A peer that acked 4 entries ago.
        let near = {
            let j = c.journal_for_tests();
            let cut = j.len() - 4;
            j[..cut]
                .iter()
                .fold(0u64, |d, ch| d.wrapping_add(change_mix(ch)))
        };
        assert_eq!(c.compact_journal(6), 7); // 13 entries -> keep 6
        assert_eq!(c.journal_len(), 6);
        assert_ne!(c.checkpoint_digest(), 0);
        // Content, weights, digest: untouched.
        assert_eq!(c, full);
        assert_eq!(c.digest(), full.digest());
        assert_eq!(c.server_weight(s(1)), full.server_weight(s(1)));
        assert_eq!(c.target_len(s(1)), full.target_len(s(1)));
        assert_eq!(
            c.restricted_to(s(1)).iter().collect::<Vec<_>>(),
            full.restricted_to(s(1)).iter().collect::<Vec<_>>()
        );
        // A recently-acked peer still gets a delta; an ancient one (and
        // the empty prefix) degrade to None -> CsRef::Full.
        assert_eq!(c.delta_since(near).map(<[Change]>::len), Some(4));
        assert_eq!(c.delta_since(0), None);
        assert_eq!(c.delta_since(c.digest()).map(<[Change]>::len), Some(0));
        assert_caches_exact(&c);
        // Compacting an already-short journal is a no-op.
        assert_eq!(c.compact_journal(6), 0);
        assert_eq!(c.compact_journal(100), 0);
        // Repeated compaction keeps folding into the checkpoint.
        assert_eq!(c.compact_journal(0), 6);
        assert_eq!(c.journal_len(), 0);
        assert_eq!(c.checkpoint_digest(), c.digest());
        assert_eq!(c.delta_since(c.digest()).map(<[Change]>::len), Some(0));
        assert_caches_exact(&c);
        assert_eq!(c, full);
    }

    #[test]
    fn compaction_is_copy_on_write() {
        let mut a = ChangeSet::uniform_initial(4, Ratio::ONE);
        let b = a.clone();
        assert_eq!(a.compact_journal(1), 3);
        assert!(!a.shares_storage_with(&b), "compaction must deep-copy");
        assert_eq!(b.journal_len(), 4, "clone keeps its full journal");
        assert_eq!(b.checkpoint_digest(), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn growth_after_compaction_journals_normally() {
        let mut c = ChangeSet::uniform_initial(2, Ratio::ONE);
        c.compact_journal(0);
        let base = c.digest();
        c.insert(Change::new(s(0), 2, s(1), Ratio::dec("0.5")));
        c.insert(Change::new(s(1), 2, s(0), Ratio::dec("-0.5")));
        assert_eq!(c.journal_len(), 2);
        assert_eq!(c.delta_since(base).map(<[Change]>::len), Some(2));
        assert_eq!(c.journal_tail(1).len(), 1);
        assert_eq!(
            c.journal_bytes(),
            2 * (std::mem::size_of::<Change>() + std::mem::size_of::<u64>())
        );
        assert_caches_exact(&c);
    }

    #[test]
    fn contains_all_equal_cardinality_uses_digest() {
        let mut a = ChangeSet::uniform_initial(3, Ratio::ONE);
        let mut b = ChangeSet::uniform_initial(3, Ratio::ONE);
        a.insert(Change::new(s(0), 2, s(0), Ratio::dec("0.1")));
        b.insert(Change::new(s(1), 2, s(1), Ratio::dec("0.1")));
        // Same cardinality, different content: certain false.
        assert!(!a.contains_all(&b));
        assert!(!b.contains_all(&a));
        // Equal content without shared storage: true.
        let c: ChangeSet = a.iter().copied().collect();
        assert!(!a.shares_storage_with(&c));
        assert!(a.contains_all(&c) && c.contains_all(&a));
        assert_eq!(a, c);
    }
}
