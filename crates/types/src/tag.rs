//! Read/write tags for the atomic storage (paper §VII, footnote 3).
//!
//! A tag is a pair `(ts, pid)`: the timestamp and the writer's process id.
//! Tags are totally ordered lexicographically — first by timestamp, then by
//! writer id — which is what makes multi-writer ABD registers atomic.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// A totally ordered write tag `(ts, pid)`.
///
/// # Examples
///
/// ```
/// use awr_types::{ClientId, ProcessId, Tag};
///
/// let w1 = ProcessId::Client(ClientId(0));
/// let w2 = ProcessId::Client(ClientId(1));
/// let a = Tag::new(1, w2);
/// let b = Tag::new(2, w1);
/// assert!(a < b);                       // higher timestamp wins
/// assert!(Tag::new(2, w1) < Tag::new(2, w2)); // ties broken by writer id
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag {
    /// Logical timestamp, incremented by writers.
    pub ts: u64,
    /// The id of the writer that produced this tag.
    pub pid: ProcessId,
}

impl Tag {
    /// Creates a tag.
    pub fn new(ts: u64, pid: ProcessId) -> Tag {
        Tag { ts, pid }
    }

    /// The initial tag `⟨0, ⊥⟩` of an unwritten register; smaller than any
    /// tag a real writer can produce. We encode `⊥` as server 0 with ts 0,
    /// which no writer emits because written tags have `ts ≥ 1`.
    pub fn bottom() -> Tag {
        Tag {
            ts: 0,
            pid: ProcessId::Server(crate::ServerId(0)),
        }
    }

    /// The tag a writer `pid` produces after observing `self` as the highest
    /// tag: `(ts + 1, pid)` (Algorithm 5 lines 24–25).
    pub fn next_for(&self, pid: ProcessId) -> Tag {
        Tag {
            ts: self.ts + 1,
            pid,
        }
    }
}

impl Default for Tag {
    fn default() -> Tag {
        Tag::bottom()
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.ts, self.pid)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A tagged register value: what servers store and what phase-1 reads return.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct TaggedValue<V> {
    /// The tag under which `value` was written.
    pub tag: Tag,
    /// The stored value (`None` until the first write).
    pub value: Option<V>,
}

impl<V> TaggedValue<V> {
    /// The initial register content `⟨⟨0, ⊥⟩, ⊥⟩` (Algorithm 4 line 3).
    pub fn bottom() -> TaggedValue<V> {
        TaggedValue {
            tag: Tag::bottom(),
            value: None,
        }
    }

    /// Creates a tagged value.
    pub fn new(tag: Tag, value: V) -> TaggedValue<V> {
        TaggedValue {
            tag,
            value: Some(value),
        }
    }

    /// Adopts `other` if its tag is strictly greater (Algorithm 6 lines 2–3).
    /// Returns `true` if the register content changed.
    pub fn adopt_if_newer(&mut self, other: &TaggedValue<V>) -> bool
    where
        V: Clone,
    {
        if self.tag < other.tag {
            *self = other.clone();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, ServerId};

    fn client(i: u32) -> ProcessId {
        ProcessId::Client(ClientId(i))
    }

    #[test]
    fn bottom_is_least() {
        let b = Tag::bottom();
        assert!(b < Tag::new(1, client(0)));
        assert!(b < Tag::new(1, ProcessId::Server(ServerId(0))));
        // bottom < any server-issued tag with ts >= 1 and even (0, client).
        assert!(b < Tag::new(0, client(0)));
    }

    #[test]
    fn lexicographic_order_matches_footnote3() {
        // tg1 < tg2 iff ts1 < ts2, or ts1 == ts2 and pid1 < pid2.
        assert!(Tag::new(1, client(9)) < Tag::new(2, client(0)));
        assert!(Tag::new(2, client(0)) < Tag::new(2, client(1)));
    }

    #[test]
    fn next_for_increments() {
        let t = Tag::new(3, client(0));
        let n = t.next_for(client(1));
        assert_eq!(n.ts, 4);
        assert_eq!(n.pid, client(1));
        assert!(t < n);
    }

    #[test]
    fn adopt_if_newer() {
        let mut reg: TaggedValue<u64> = TaggedValue::bottom();
        assert!(reg.adopt_if_newer(&TaggedValue::new(Tag::new(1, client(0)), 42)));
        assert_eq!(reg.value, Some(42));
        // Stale write is ignored.
        assert!(!reg.adopt_if_newer(&TaggedValue::new(Tag::new(1, client(0)), 7)));
        assert_eq!(reg.value, Some(42));
        // Equal tag is ignored too (idempotent redelivery).
        let again = TaggedValue::new(Tag::new(1, client(0)), 42);
        assert!(!reg.adopt_if_newer(&again));
    }
}
