//! The tree quorum protocol (Agrawal & El Abbadi [3]; cited in the paper's
//! §I).
//!
//! Servers form a complete binary tree; a quorum is obtained by the
//! recursive *majority-of-paths* rule: a quorum of a tree rooted at `v` is
//! either `v` together with a quorum of one of its subtrees, or quorums of
//! **both** subtrees (allowing the root to be skipped). In the classic
//! formulation quorums can be as small as `⌈log n⌉`-ish root-to-leaf paths
//! when the root is alive, degrading gracefully as nodes fail.

use std::collections::BTreeSet;

use awr_types::ServerId;

use crate::QuorumSystem;

/// A tree quorum system over a complete binary tree of `n` nodes stored in
/// heap order (node `i`'s children are `2i + 1` and `2i + 2`).
///
/// # Examples
///
/// ```
/// use awr_quorum::{QuorumSystem, TreeQuorumSystem};
/// use awr_types::ServerId;
///
/// // 7 nodes: root 0, children 1,2, leaves 3..6.
/// let t = TreeQuorumSystem::new(7);
/// // A root-to-leaf path is a quorum: {0, 1, 3}.
/// assert!(t.is_quorum_slice(&[ServerId(0), ServerId(1), ServerId(3)]));
/// // If the root failed: need paths through both children.
/// assert!(t.is_quorum_slice(&[
///     ServerId(1), ServerId(3), ServerId(2), ServerId(5),
/// ]));
/// assert_eq!(t.min_quorum_size(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeQuorumSystem {
    n: usize,
}

impl TreeQuorumSystem {
    /// Creates a tree system over `n` heap-ordered servers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> TreeQuorumSystem {
        assert!(n > 0, "tree needs at least one node");
        TreeQuorumSystem { n }
    }

    /// Recursive quorum test for the subtree rooted at `root`.
    fn covers(&self, servers: &BTreeSet<ServerId>, root: usize) -> bool {
        if root >= self.n {
            // An empty subtree is vacuously covered only when reached
            // through "both children" of a leaf — treat as covered so
            // leaves behave correctly.
            return true;
        }
        let left = 2 * root + 1;
        let right = 2 * root + 2;
        let here = servers.contains(&ServerId(root as u32));
        if left >= self.n {
            // Leaf: must be present itself.
            return here;
        }
        if here {
            // Root + a quorum of either subtree.
            self.covers(servers, left) || self.covers(servers, right)
        } else {
            // Skip the root: need quorums of both subtrees.
            self.covers(servers, left) && self.covers(servers, right)
        }
    }

    fn min_size(&self, root: usize) -> usize {
        if root >= self.n {
            return 0;
        }
        let left = 2 * root + 1;
        let right = 2 * root + 2;
        if left >= self.n {
            return 1;
        }
        let with_root = 1 + self.min_size(left).min(self.min_size(right));
        let without_root = self.min_size(left) + self.min_size(right);
        with_root.min(without_root)
    }
}

impl QuorumSystem for TreeQuorumSystem {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn is_quorum(&self, servers: &BTreeSet<ServerId>) -> bool {
        self.covers(servers, 0)
    }

    fn min_quorum_size(&self) -> usize {
        self.min_size(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::verify_intersection;

    fn ids(v: &[u32]) -> BTreeSet<ServerId> {
        v.iter().map(|&i| ServerId(i)).collect()
    }

    #[test]
    fn path_is_quorum() {
        let t = TreeQuorumSystem::new(7);
        assert!(t.is_quorum(&ids(&[0, 1, 3])));
        assert!(t.is_quorum(&ids(&[0, 2, 6])));
        // Root alone is not (its subtrees are non-empty).
        assert!(!t.is_quorum(&ids(&[0])));
        // Two leaves alone are not.
        assert!(!t.is_quorum(&ids(&[3, 5])));
    }

    #[test]
    fn root_failure_needs_both_subtrees() {
        let t = TreeQuorumSystem::new(7);
        assert!(t.is_quorum(&ids(&[1, 3, 2, 5])));
        assert!(!t.is_quorum(&ids(&[1, 3])));
        // One subtree fully + nothing from the other: not a quorum.
        assert!(!t.is_quorum(&ids(&[1, 3, 4])));
    }

    #[test]
    fn min_quorum_is_logarithmic() {
        assert_eq!(TreeQuorumSystem::new(1).min_quorum_size(), 1);
        assert_eq!(TreeQuorumSystem::new(3).min_quorum_size(), 2);
        assert_eq!(TreeQuorumSystem::new(7).min_quorum_size(), 3);
        assert_eq!(TreeQuorumSystem::new(15).min_quorum_size(), 4);
        // vs majority of 15: 8.
        assert!(TreeQuorumSystem::new(15).min_quorum_size() < 8);
    }

    #[test]
    fn trees_intersect() {
        for n in [1usize, 3, 7, 15] {
            assert!(verify_intersection(&TreeQuorumSystem::new(n)), "n={n}");
        }
    }

    #[test]
    fn brute_force_min_matches_recursive() {
        for n in [1usize, 3, 7] {
            let t = TreeQuorumSystem::new(n);
            struct Wrap<'a>(&'a TreeQuorumSystem);
            impl QuorumSystem for Wrap<'_> {
                fn universe_size(&self) -> usize {
                    self.0.universe_size()
                }
                fn is_quorum(&self, s: &BTreeSet<ServerId>) -> bool {
                    self.0.is_quorum(s)
                }
            }
            assert_eq!(t.min_quorum_size(), Wrap(&t).min_quorum_size(), "n={n}");
        }
    }
}
