//! The weighted majority quorum system (WMQS, paper Definition 1).
//!
//! Each server carries a weight; a set of servers is a quorum iff its total
//! weight is *strictly greater than half* the total weight of all servers.
//! When a minority of servers holds a majority of the weight, quorums
//! smaller than `⌊n/2⌋ + 1` exist — the performance lever the whole paper is
//! built around.

use std::collections::BTreeSet;

use awr_types::{Ratio, ServerId, WeightMap};

use crate::QuorumSystem;

/// The weighted one-phase (fast-path) read rule: a read may return at the
/// end of phase 1 — skipping the write-back phase entirely — iff the
/// cumulative weight of the phase-1 repliers that reported the *maximum*
/// tag is itself a quorum under the fixed threshold
/// (`Σ w > threshold_total / 2`).
///
/// Safety sketch: every one of those repliers already stores the max-tag
/// register (registers are adopt-if-newer monotone), so the execution is
/// indistinguishable from a two-phase read whose `W` messages to exactly
/// those servers were delivered with zero delay — the write-back would
/// change no server state and each fresh replier's `R`-ack doubles as its
/// `W`-ack. Any quorum a later operation contacts intersects this
/// weight-quorum (Lemma 3), so it sees a tag ≥ the returned one: no
/// new/old inversion. In the dynamic-weight setting the rule is only sound
/// when the weights summed are the ones of the *replier-consistent* change
/// set — the caller must have verified every counted replier accepted its
/// request under the same `C` the weights come from (the storage driver's
/// accept/reject discipline does exactly that).
///
/// This is the weight-based generalization of the count-based early
/// return in dist-register's verified ABD client (SNIPPETS.md, SNIPPET 1).
pub fn fast_path_read_quorum(max_tag_weight: Ratio, threshold_total: Ratio) -> bool {
    max_tag_weight > threshold_total.half()
}

/// A weighted majority quorum system (Definition 1).
///
/// The quorum predicate compares against a fixed threshold `total / 2`. For
/// the paper's dynamic storage, the threshold is `W_{S,0} / 2` (the *initial*
/// total) while per-server weights evolve — constructed via
/// [`WeightedMajorityQuorumSystem::with_threshold_total`].
///
/// # Examples
///
/// ```
/// use awr_quorum::{QuorumSystem, WeightedMajorityQuorumSystem};
/// use awr_types::{Ratio, ServerId, WeightMap};
///
/// // Fig. 1 end state: s1,s2,s3 hold 1.25 each — three servers of seven
/// // form a quorum (3.75 > 3.5).
/// let w = WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"]);
/// let wmqs = WeightedMajorityQuorumSystem::new(w);
/// assert!(wmqs.is_quorum_slice(&[ServerId(0), ServerId(1), ServerId(2)]));
/// assert_eq!(wmqs.min_quorum_size(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedMajorityQuorumSystem {
    weights: WeightMap,
    threshold_total: Ratio,
}

impl WeightedMajorityQuorumSystem {
    /// Creates a WMQS whose threshold is half of the *current* total weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn new(weights: WeightMap) -> WeightedMajorityQuorumSystem {
        assert!(!weights.is_empty(), "WMQS needs at least one server");
        let total = weights.total();
        WeightedMajorityQuorumSystem {
            weights,
            threshold_total: total,
        }
    }

    /// Creates a WMQS whose quorum predicate is
    /// `W_Q > threshold_total / 2` regardless of the current total — this is
    /// the `is_quorum` of Algorithm 5 (`W_{S,0}/2 < Σ w_i`).
    pub fn with_threshold_total(
        weights: WeightMap,
        threshold_total: Ratio,
    ) -> WeightedMajorityQuorumSystem {
        assert!(!weights.is_empty(), "WMQS needs at least one server");
        WeightedMajorityQuorumSystem {
            weights,
            threshold_total,
        }
    }

    /// The weight vector backing this system.
    pub fn weights(&self) -> &WeightMap {
        &self.weights
    }

    /// The total used for the quorum threshold (`W_Q > total/2`).
    pub fn threshold_total(&self) -> Ratio {
        self.threshold_total
    }

    /// Whether an already-summed weight satisfies this system's quorum
    /// predicate — the accumulator-friendly form of
    /// [`QuorumSystem::is_quorum`] used by clients that maintain a running
    /// weight per reply instead of re-summing a set (and by the fast-path
    /// read rule, [`fast_path_read_quorum`]).
    pub fn is_quorum_weight(&self, weight: Ratio) -> bool {
        weight > self.threshold_total.half()
    }

    /// Total weight of a candidate set.
    pub fn set_weight(&self, servers: &BTreeSet<ServerId>) -> Ratio {
        servers
            .iter()
            .filter(|s| s.index() < self.weights.len())
            .map(|s| self.weights.weight(*s))
            .sum()
    }

    /// Greedy smallest quorum: heaviest servers first. For WMQS this greedy
    /// choice is optimal, so the result equals [`QuorumSystem::min_quorum_size`]
    /// in O(n log n).
    pub fn smallest_quorum(&self) -> Option<Vec<ServerId>> {
        let mut by_weight: Vec<ServerId> = ServerId::all(self.weights.len()).collect();
        by_weight.sort_by(|a, b| {
            self.weights
                .weight(*b)
                .cmp(&self.weights.weight(*a))
                .then(a.cmp(b))
        });
        let mut acc = Ratio::ZERO;
        let goal = self.threshold_total.half();
        let mut q = Vec::new();
        for s in by_weight {
            acc += self.weights.weight(s);
            q.push(s);
            if acc > goal {
                return Some(q);
            }
        }
        None
    }
}

impl QuorumSystem for WeightedMajorityQuorumSystem {
    fn universe_size(&self) -> usize {
        self.weights.len()
    }

    fn is_quorum(&self, servers: &BTreeSet<ServerId>) -> bool {
        self.is_quorum_weight(self.set_weight(servers))
    }

    fn min_quorum_size(&self) -> usize {
        match self.smallest_quorum() {
            Some(q) => q.len(),
            None => self.weights.len() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::verify_intersection;

    #[test]
    fn uniform_weights_reduce_to_majority() {
        for n in 1..=8usize {
            let wmqs = WeightedMajorityQuorumSystem::new(WeightMap::uniform(n, Ratio::ONE));
            assert_eq!(wmqs.min_quorum_size(), n / 2 + 1, "n={n}");
        }
    }

    #[test]
    fn skewed_weights_allow_minority_quorum() {
        // Example 2 / §V.C weights.
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        let wmqs = WeightedMajorityQuorumSystem::new(w);
        // s1 + s2 + any 0.8 = 3.8 > 3.5 → quorum of size 3.
        assert!(wmqs.is_quorum_slice(&[ServerId(0), ServerId(1), ServerId(2)]));
        assert_eq!(wmqs.min_quorum_size(), 3);
        // s1 + s2 alone: 3.0 < 3.5 → not a quorum.
        assert!(!wmqs.is_quorum_slice(&[ServerId(0), ServerId(1)]));
    }

    #[test]
    fn exactly_half_is_not_a_quorum() {
        // Strictness matters: 2.0 of 4.0 must NOT be a quorum.
        let w = WeightMap::dec(&["2", "1", "1"]);
        let wmqs = WeightedMajorityQuorumSystem::new(w);
        assert!(!wmqs.is_quorum_slice(&[ServerId(0)])); // 2 == 4/2
        assert!(wmqs.is_quorum_slice(&[ServerId(0), ServerId(1)]));
    }

    #[test]
    fn fixed_threshold_total_tracks_initial() {
        // Weights changed but threshold stays W_{S,0}/2 = 3.5.
        let current = WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"]);
        let wmqs = WeightedMajorityQuorumSystem::with_threshold_total(current, Ratio::integer(7));
        assert!(wmqs.is_quorum_slice(&[ServerId(0), ServerId(1), ServerId(2)]));
        assert_eq!(wmqs.threshold_total(), Ratio::integer(7));
    }

    #[test]
    fn intersection_exhaustive_random_weights() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.random_range(1..=7);
            let w: WeightMap = (0..n)
                .map(|_| Ratio::new(rng.random_range(1..=20), 10))
                .collect();
            let wmqs = WeightedMajorityQuorumSystem::new(w);
            assert!(verify_intersection(&wmqs));
        }
    }

    #[test]
    fn smallest_quorum_is_actually_a_quorum() {
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        let wmqs = WeightedMajorityQuorumSystem::new(w);
        let q = wmqs.smallest_quorum().unwrap();
        assert!(wmqs.is_quorum_slice(&q));
        assert_eq!(q.len(), wmqs.min_quorum_size());
    }

    #[test]
    fn fast_path_rule_matches_set_predicate() {
        // The accumulator form and the set form must agree on every subset.
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        let wmqs = WeightedMajorityQuorumSystem::with_threshold_total(w, Ratio::integer(7));
        for bits in 0u32..(1 << 7) {
            let set: BTreeSet<ServerId> = (0..7)
                .filter(|i| bits & (1 << i) != 0)
                .map(ServerId)
                .collect();
            let sum = wmqs.set_weight(&set);
            assert_eq!(wmqs.is_quorum(&set), wmqs.is_quorum_weight(sum));
            assert_eq!(
                wmqs.is_quorum(&set),
                fast_path_read_quorum(sum, wmqs.threshold_total())
            );
        }
    }

    #[test]
    fn fast_path_rule_is_strict() {
        // Exactly half the initial total is NOT enough for a one-phase read.
        assert!(!fast_path_read_quorum(Ratio::dec("3.5"), Ratio::integer(7)));
        assert!(fast_path_read_quorum(Ratio::dec("3.6"), Ratio::integer(7)));
        assert!(!fast_path_read_quorum(Ratio::ZERO, Ratio::integer(7)));
    }

    #[test]
    fn no_quorum_with_zero_threshold_weights() {
        // All weight zero: no set can strictly exceed 0/2 = 0... except none,
        // since every set weighs 0. min_quorum_size reports n + 1.
        let wmqs = WeightedMajorityQuorumSystem::new(WeightMap::uniform(3, Ratio::ZERO));
        assert_eq!(wmqs.min_quorum_size(), 4);
    }
}
