//! # awr-quorum — majority and weighted-majority quorum systems
//!
//! Implements the quorum machinery of *“How Hard is Asynchronous Weight
//! Reassignment?”* (ICDCS 2023):
//!
//! * [`QuorumSystem`] — the predicate-style abstraction every protocol uses;
//! * [`MajorityQuorumSystem`] — the regular MQS baseline;
//! * [`GridQuorumSystem`] / [`TreeQuorumSystem`] — the grid \[2\] and tree
//!   \[3\] systems the paper's introduction contrasts with majorities,
//!   plus Naor–Wool [`approximate_load`] analysis;
//! * [`WeightedMajorityQuorumSystem`] — Definition 1, with a fixed-threshold
//!   variant matching Algorithm 5's `is_quorum` (`Σ w > W_{S,0}/2`);
//! * availability & integrity checks — Property 1, Integrity, the
//!   RP-Integrity floor `W_{S,0}/(2(n−f))`, and executable Lemma 1;
//! * analysis helpers for the experiment harnesses (smallest quorum avoiding
//!   failed servers, fastest-quorum latency, skew sweeps);
//! * [`placement`] — utilization-driven weight placement: the
//!   [`PlacementPolicy`] trait ([`placement::Static`], [`LatencyGreedy`],
//!   [`UtilizationAware`]) consumes the simulator's per-link latency /
//!   utilization matrices and proposes safe weight maps, and
//!   [`plan_transfers`] decomposes the move into C1-compatible pairwise
//!   transfers.
//!
//! # Examples
//!
//! ```
//! use awr_quorum::{integrity_holds, QuorumSystem, WeightedMajorityQuorumSystem};
//! use awr_types::{Ratio, ServerId, WeightMap};
//!
//! let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
//! assert!(integrity_holds(&w, 2)); // Property 1 with f = 2
//!
//! let wmqs = WeightedMajorityQuorumSystem::new(w);
//! assert_eq!(wmqs.min_quorum_size(), 3); // minority quorum
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod availability;
mod grid;
mod load;
mod majority;
pub mod placement;
mod system;
mod tree;
mod weighted;

pub use analysis::{fastest_quorum_latency, skew_sweep, smallest_quorum_avoiding, SkewRow};
pub use availability::{
    integrity_holds, integrity_holds_with_total, lemma1_check, max_tolerable_faults,
    max_transferable, rp_floor, rp_integrity_holds, validate_initial_config, ConfigViolation,
};
pub use grid::GridQuorumSystem;
pub use load::{approximate_load, greedy_weighted_load, load_lower_bound, LoadAnalysis};
pub use majority::MajorityQuorumSystem;
pub use placement::{
    plan_transfers, shape_weights, LatencyGreedy, PlacementInputs, PlacementPolicy,
    PlannedTransfer, UtilizationAware,
};
pub use system::{minimal_quorums, verify_intersection, QuorumSystem};
pub use tree::TreeQuorumSystem;
pub use weighted::{fast_path_read_quorum, WeightedMajorityQuorumSystem};

#[cfg(test)]
mod proptests {
    use super::*;
    use awr_types::ServerId;
    use awr_types::{Ratio, WeightMap};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn weights_strategy() -> impl Strategy<Value = WeightMap> {
        proptest::collection::vec(1i128..40, 1..9)
            .prop_map(|ws| ws.into_iter().map(|w| Ratio::new(w, 10)).collect())
    }

    proptest! {
        /// Lemma 3, generalized: any two weighted quorums intersect.
        #[test]
        fn weighted_quorums_intersect(w in weights_strategy()) {
            let q = WeightedMajorityQuorumSystem::new(w);
            prop_assert!(verify_intersection(&q));
        }

        /// Lemma 1: RP-Integrity (with the real total) implies Integrity.
        #[test]
        fn rp_implies_integrity(w in weights_strategy(), f in 1usize..4) {
            let n = w.len();
            prop_assume!(n > f);
            let floor = rp_floor(w.total(), n, f);
            if rp_integrity_holds(&w, floor) {
                prop_assert!(integrity_holds(&w, f));
            }
        }

        /// Property 1 ⇒ survivors of any f crashes still form a quorum.
        #[test]
        fn property1_implies_crash_availability(w in weights_strategy(), f in 0usize..4) {
            let n = w.len();
            prop_assume!(f < n);
            if integrity_holds(&w, f) {
                let q = WeightedMajorityQuorumSystem::new(w.clone());
                // Worst case: crash the f heaviest.
                let crashed: BTreeSet<ServerId> = w.top_f_servers(f).into_iter().collect();
                let survivors: BTreeSet<ServerId> = ServerId::all(n)
                    .filter(|s| !crashed.contains(s))
                    .collect();
                prop_assert!(q.is_quorum(&survivors));
            }
        }

        /// Greedy smallest quorum matches brute force for small universes.
        #[test]
        fn greedy_matches_bruteforce(w in weights_strategy()) {
            prop_assume!(w.len() <= 7);
            let q = WeightedMajorityQuorumSystem::new(w);
            let greedy = q.min_quorum_size();
            struct Wrap<'a>(&'a WeightedMajorityQuorumSystem);
            impl QuorumSystem for Wrap<'_> {
                fn universe_size(&self) -> usize { self.0.universe_size() }
                fn is_quorum(&self, s: &BTreeSet<ServerId>) -> bool { self.0.is_quorum(s) }
            }
            let brute = Wrap(&q).min_quorum_size();
            prop_assert_eq!(greedy, brute);
        }
    }
}
