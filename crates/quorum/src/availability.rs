//! Availability of weighted quorum systems (paper Property 1) and the
//! integrity conditions derived from it.
//!
//! * **Property 1**: a WMQS is available iff the sum of the `f` greatest
//!   weights is less than half the total weight — otherwise crashing `f`
//!   heavy servers can leave the survivors below the quorum threshold.
//! * **Integrity** (Definition 3): `∀t, ∀F ⊂ S, |F| = f: W_{F,t} < W_{S,t}/2`
//!   — Property 1 maintained at all times.
//! * **RP-Integrity** (Definition 5): `∀t, ∀s: W_{s,t} > W_{S,0}/(2(n−f))`
//!   — a per-server floor that *implies* Integrity when the total is
//!   constant (Lemma 1).

use awr_types::{Ratio, ServerId, WeightMap};

/// Checks **Property 1 / Integrity** for a weight vector: the `f` heaviest
/// servers hold strictly less than half the total.
///
/// It is sufficient to check the heaviest `f`-subset: every other `F` with
/// `|F| = f` weighs no more.
///
/// # Examples
///
/// ```
/// use awr_quorum::integrity_holds;
/// use awr_types::WeightMap;
///
/// let w = WeightMap::dec(&["1", "1", "1", "1"]);
/// assert!(integrity_holds(&w, 1)); // 1 < 2
/// // Give s1 half the total: 2 ≮ 2 → violated.
/// let w = WeightMap::dec(&["2", "2/3", "2/3", "2/3"]);
/// assert!(!integrity_holds(&w, 1));
/// ```
pub fn integrity_holds(weights: &WeightMap, f: usize) -> bool {
    weights.top_f_sum(f) < weights.total().half()
}

/// Checks Integrity against an explicit total (used when the property must
/// be judged against `W_{S,t}` while a hypothetical change is applied).
pub fn integrity_holds_with_total(weights: &WeightMap, f: usize, total: Ratio) -> bool {
    weights.top_f_sum(f) < total.half()
}

/// The **RP-Integrity floor** `W_{S,0} / (2(n − f))` (Definition 5).
///
/// # Panics
///
/// Panics if `f ≥ n`.
pub fn rp_floor(initial_total: Ratio, n: usize, f: usize) -> Ratio {
    assert!(f < n, "fault threshold f={f} must be < n={n}");
    initial_total / Ratio::integer(2 * (n - f) as i64)
}

/// Checks **RP-Integrity**: every server's weight strictly exceeds the floor.
///
/// # Examples
///
/// ```
/// use awr_quorum::{rp_floor, rp_integrity_holds};
/// use awr_types::{Ratio, WeightMap};
///
/// // Example 2: n = 7, f = 2 → floor = 7/10 = 0.7.
/// let floor = rp_floor(Ratio::integer(7), 7, 2);
/// assert_eq!(floor, Ratio::dec("0.7"));
/// let w = WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"]);
/// assert!(rp_integrity_holds(&w, floor));
/// // A server exactly at the floor violates it (strict inequality).
/// let w2 = WeightMap::dec(&["1.3", "1.25", "1.25", "0.7", "0.75", "0.75", "1"]);
/// assert!(!rp_integrity_holds(&w2, floor));
/// ```
pub fn rp_integrity_holds(weights: &WeightMap, floor: Ratio) -> bool {
    weights.iter().all(|(_, w)| w > floor)
}

/// Lemma 1, executable: if every server is strictly above the RP floor and
/// the total equals the initial total, then (P-)Integrity holds. Returns the
/// pair `(rp_holds, integrity_holds)` so tests can assert the implication.
pub fn lemma1_check(weights: &WeightMap, initial_total: Ratio, n: usize, f: usize) -> (bool, bool) {
    let rp = rp_integrity_holds(weights, rp_floor(initial_total, n, f));
    let integ = integrity_holds(weights, f);
    (rp, integ)
}

/// The largest fault threshold `f` for which the weight vector satisfies
/// Property 1, i.e. the actual resilience of the configuration.
pub fn max_tolerable_faults(weights: &WeightMap) -> usize {
    let n = weights.len();
    let mut best = 0;
    for f in 0..=n {
        if integrity_holds(weights, f) {
            best = f;
        } else {
            break;
        }
    }
    best
}

/// The transfer-feasibility bound of Algorithm 4 line 12: server `s` may
/// transfer `Δ` iff `W_s > Δ + floor`. Returns the largest `Δ` the server
/// could transfer while preserving RP-Integrity (exclusive bound).
pub fn max_transferable(weight: Ratio, floor: Ratio) -> Ratio {
    (weight - floor).max(Ratio::ZERO)
}

/// Validates an initial configuration for the restricted pairwise problem:
/// all weights strictly above the floor (so RP-Integrity holds at `t = 0`)
/// and Property 1 satisfied.
///
/// Returns a list of violations (empty = valid).
pub fn validate_initial_config(weights: &WeightMap, f: usize) -> Vec<ConfigViolation> {
    let mut v = Vec::new();
    let n = weights.len();
    if f >= n {
        v.push(ConfigViolation::FaultThresholdTooLarge { n, f });
        return v;
    }
    if !integrity_holds(weights, f) {
        v.push(ConfigViolation::Property1 {
            top_f: weights.top_f_sum(f),
            half_total: weights.total().half(),
        });
    }
    let floor = rp_floor(weights.total(), n, f);
    for (s, w) in weights.iter() {
        if w <= floor {
            v.push(ConfigViolation::BelowRpFloor {
                server: s,
                weight: w,
                floor,
            });
        }
    }
    v
}

/// A reason an initial configuration is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigViolation {
    /// `f ≥ n` leaves no live quorum.
    FaultThresholdTooLarge {
        /// Number of servers.
        n: usize,
        /// Requested fault threshold.
        f: usize,
    },
    /// Property 1 fails: the `f` heaviest servers reach half the total.
    Property1 {
        /// Sum of the `f` greatest weights.
        top_f: Ratio,
        /// Half of the total weight.
        half_total: Ratio,
    },
    /// A server starts at or below the RP-Integrity floor.
    BelowRpFloor {
        /// The offending server.
        server: ServerId,
        /// Its weight.
        weight: Ratio,
        /// The floor it must strictly exceed.
        floor: Ratio,
    },
}

impl std::fmt::Display for ConfigViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigViolation::FaultThresholdTooLarge { n, f: ft } => {
                write!(f, "fault threshold {ft} too large for {n} servers")
            }
            ConfigViolation::Property1 { top_f, half_total } => write!(
                f,
                "property 1 violated: top-f weight {top_f} >= half total {half_total}"
            ),
            ConfigViolation::BelowRpFloor {
                server,
                weight,
                floor,
            } => write!(
                f,
                "server {server} weight {weight} at or below RP floor {floor}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property1_uniform() {
        // n = 2f + 1 uniform: f < (2f+1)/2 ⟺ always true.
        for f in 1..5usize {
            let n = 2 * f + 1;
            let w = WeightMap::uniform(n, Ratio::ONE);
            assert!(integrity_holds(&w, f), "n={n} f={f}");
            assert!(!integrity_holds(&w, f + 1), "n={n} f={f}");
        }
    }

    #[test]
    fn algorithm1_initial_weights_satisfy_integrity() {
        // W_F = (n-1)/2 < n/2 with the paper's Algorithm 1 initial weights.
        for (n, f) in [(4usize, 1usize), (7, 3), (10, 4)] {
            let wf = Ratio::integer((n - 1) as i64) / Ratio::integer(2 * f as i64);
            let wr = Ratio::integer((n + 1) as i64) / Ratio::integer(2 * (n - f) as i64);
            let w = WeightMap::from_fn(n, |s| if s.index() < f { wf } else { wr });
            assert_eq!(w.total(), Ratio::integer(n as i64));
            assert!(integrity_holds(&w, f), "n={n} f={f}");
        }
    }

    #[test]
    fn algorithm1_one_bump_lands_exactly_on_half() {
        // After one +0.5 to a member of F the Integrity check must sit at
        // exactly W_S/2 for the *next* bump — the knife-edge the reduction
        // exploits. With n=4, f=1: W_F = 1.5 + 0.5 = 2.0; new total 4.5;
        // 2.0 < 2.25 still fine. A second change (−0.5 elsewhere) makes
        // total 4.0 and 2.0 ≮ 2.0.
        let n = 4;
        let f = 1;
        let wf = Ratio::dec("1.5");
        let wr = Ratio::new(5, 6);
        let mut w = WeightMap::from_fn(n, |s| if s.index() < f { wf } else { wr });
        w.add(ServerId(0), Ratio::dec("0.5"));
        assert!(integrity_holds(&w, f));
        w.add(ServerId(1), Ratio::dec("-0.5"));
        assert!(!integrity_holds(&w, f));
    }

    #[test]
    fn rp_floor_example2() {
        assert_eq!(rp_floor(Ratio::integer(7), 7, 2), Ratio::dec("0.7"));
        assert_eq!(rp_floor(Ratio::integer(4), 4, 1), Ratio::new(4, 6));
    }

    #[test]
    #[should_panic(expected = "must be < n")]
    fn rp_floor_bad_f_panics() {
        let _ = rp_floor(Ratio::integer(3), 3, 3);
    }

    #[test]
    fn lemma1_implication_samples() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut checked = 0;
        for _ in 0..500 {
            let f = rng.random_range(1..4usize);
            let n = rng.random_range(2 * f + 1..2 * f + 6);
            let total = Ratio::integer(n as i64);
            let floor = rp_floor(total, n, f);
            // Random weights near 1, rescaled so the total is exactly n.
            let raw: Vec<Ratio> = (0..n)
                .map(|_| Ratio::new(rng.random_range(7..=13), 10))
                .collect();
            let raw_sum: Ratio = raw.iter().sum();
            let w = WeightMap::from_vec(raw.into_iter().map(|r| r * total / raw_sum).collect());
            assert_eq!(w.total(), total);
            let rp = rp_integrity_holds(&w, floor);
            if rp {
                checked += 1;
                assert!(
                    integrity_holds(&w, f),
                    "Lemma 1 violated: {w:?} f={f} floor={floor}"
                );
            }
        }
        assert!(checked > 0, "sampler never produced an RP-valid vector");
    }

    #[test]
    fn max_tolerable() {
        let w = WeightMap::uniform(7, Ratio::ONE);
        assert_eq!(max_tolerable_faults(&w), 3);
        let skew = WeightMap::dec(&["3", "1", "1", "1", "1"]);
        // top-1 = 3 < 3.5 → f=1 ok; top-2 = 4 ≥ 3.5 → f=2 fails.
        assert_eq!(max_tolerable_faults(&skew), 1);
    }

    #[test]
    fn max_transferable_bound() {
        let floor = Ratio::dec("0.7");
        assert_eq!(max_transferable(Ratio::ONE, floor), Ratio::dec("0.3"));
        assert_eq!(max_transferable(Ratio::dec("0.5"), floor), Ratio::ZERO);
    }

    #[test]
    fn validate_config_reports_all_violations() {
        // f too large.
        let w = WeightMap::uniform(3, Ratio::ONE);
        assert_eq!(
            validate_initial_config(&w, 3),
            vec![ConfigViolation::FaultThresholdTooLarge { n: 3, f: 3 }]
        );
        // Healthy config.
        assert!(validate_initial_config(&WeightMap::uniform(7, Ratio::ONE), 2).is_empty());
        // Floor violation (w=0.5 ≤ 0.7) and possibly property-1.
        let bad = WeightMap::dec(&["1.5", "1", "1", "1", "1", "1", "0.5"]);
        let viol = validate_initial_config(&bad, 2);
        assert!(viol.iter().any(
            |v| matches!(v, ConfigViolation::BelowRpFloor { server, .. } if *server == ServerId(6))
        ));
    }

    #[test]
    fn violation_display() {
        let v = ConfigViolation::Property1 {
            top_f: Ratio::integer(4),
            half_total: Ratio::dec("3.5"),
        };
        assert!(v.to_string().contains("property 1"));
    }
}
