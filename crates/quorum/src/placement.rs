//! Utilization-driven weight placement: the *decide* step of the
//! observe→decide→reassign loop.
//!
//! The paper assumes weights are reassigned "based on the information
//! provided by a monitoring system" (§VI, citing WHEAT/AWARE) and leaves
//! the decision out of scope. This module supplies it: a
//! [`PlacementPolicy`] consumes a [`PlacementInputs`] — the simulator's
//! per-link [`Metrics`] (latency and utilization matrices) plus the
//! current [`WeightMap`] — and proposes a new weight map that the
//! restricted pairwise protocol can then reach through C1/C2-compatible
//! transfers (see [`plan_transfers`]).
//!
//! Three policies ship:
//!
//! * [`Static`] — the do-nothing baseline every benchmark compares
//!   against;
//! * [`LatencyGreedy`] — WHEAT-style: weight shifts toward the servers
//!   with the lowest observed mean round-trip *propagation* to the
//!   observers, so the fastest quorum under the active network model
//!   carries a majority of the weight;
//! * [`UtilizationAware`] — additionally penalizes servers behind hot
//!   links: observed queueing delay enters the score directly, and link /
//!   uplink utilization ([`Metrics::link_utilization`],
//!   [`Metrics::uplink_utilization`], with the [`Metrics::bytes_on_link`]
//!   traffic share as fallback where no transmission time is charged)
//!   scales it further. Under cross traffic this is the policy that routes
//!   weight *around* contention rather than merely toward proximity.
//!
//! Every proposal is safe by construction: each server's target weight is
//! clamped strictly above the RP-Integrity floor (times a margin), which
//! by Lemma 1 implies Property 1 — so the proposed map always preserves
//! quorum intersection and `f`-crash availability, and the total weight is
//! preserved exactly (transfers cannot mint weight). The
//! `tests/placement.rs` property suite pins all three invariants for every
//! policy.

use awr_sim::{ActorId, Metrics};
use awr_types::{Ratio, ServerId, WeightMap};

/// Everything a placement policy may look at when proposing a weight map.
///
/// The servers are identified by their world [`ActorId`]s (index-aligned
/// with the [`WeightMap`]); `observers` are the actors whose operation
/// latency the policy optimizes — typically the storage clients.
pub struct PlacementInputs<'a> {
    /// The run's per-link observation matrices.
    pub metrics: &'a Metrics,
    /// The weight map in force (the proposal must preserve its total).
    pub current: &'a WeightMap,
    /// The RP-Integrity floor `W_{S,0} / (2(n − f))`: every proposed
    /// weight stays strictly above it.
    pub floor: Ratio,
    /// Crash-fault tolerance the proposal must keep (Property 1).
    pub f: usize,
    /// Actor id of each server, index-aligned with `current`.
    pub server_actors: Vec<ActorId>,
    /// Actors whose operation latency is being optimized (clients).
    pub observers: Vec<ActorId>,
}

impl<'a> PlacementInputs<'a> {
    /// The common harness layout: servers at world indices `0..n`,
    /// observers listed explicitly.
    pub fn for_prefix_servers(
        metrics: &'a Metrics,
        current: &'a WeightMap,
        floor: Ratio,
        f: usize,
        observers: Vec<ActorId>,
    ) -> PlacementInputs<'a> {
        PlacementInputs {
            metrics,
            current,
            floor,
            f,
            server_actors: (0..current.len()).map(ActorId).collect(),
            observers,
        }
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.current.len()
    }
}

/// A weight placement policy: proposes the weight map the system should
/// move to, given what has been observed.
///
/// Implementations must preserve the current total exactly and keep every
/// server strictly above `inputs.floor` (use [`shape_weights`], which
/// guarantees both plus Property 1).
pub trait PlacementPolicy {
    /// A short stable name for telemetry and benchmark reports.
    fn name(&self) -> &'static str;

    /// Proposes a new weight map.
    fn propose(&self, inputs: &PlacementInputs<'_>) -> WeightMap;
}

impl PlacementPolicy for Box<dyn PlacementPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn propose(&self, inputs: &PlacementInputs<'_>) -> WeightMap {
        (**self).propose(inputs)
    }
}

/// The baseline: never moves weight.
#[derive(Clone, Copy, Debug, Default)]
pub struct Static;

impl PlacementPolicy for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn propose(&self, inputs: &PlacementInputs<'_>) -> WeightMap {
        inputs.current.clone()
    }
}

/// Shifts weight toward the servers with the lowest observed mean RTT to
/// the observers, so the fastest quorum under the active network model
/// holds a weighted majority. Uses *propagation* means only — deliberately
/// blind to queueing, which is [`UtilizationAware`]'s job.
#[derive(Clone, Copy, Debug)]
pub struct LatencyGreedy {
    /// Safety margin above the floor as a fraction (0.1 keeps every target
    /// ≥ 1.1 × floor).
    pub margin: f64,
}

impl Default for LatencyGreedy {
    fn default() -> LatencyGreedy {
        LatencyGreedy { margin: 0.1 }
    }
}

impl PlacementPolicy for LatencyGreedy {
    fn name(&self) -> &'static str {
        "latency-greedy"
    }

    fn propose(&self, inputs: &PlacementInputs<'_>) -> WeightMap {
        let scores = fill_unobserved(
            inputs
                .server_actors
                .iter()
                .map(|&s| observed_rtt(inputs, s))
                .collect(),
        );
        shape_weights(&scores, inputs.current.total(), inputs.floor, self.margin)
    }
}

/// Penalizes servers behind hot links and uplinks: the score is observed
/// RTT *plus* observed mean queueing on the observer links, scaled by
/// `1 + utilization_weight × busy` where `busy` is the worst incident
/// link/uplink utilization (falling back to the server's share of all
/// bytes on the wire when the network model charges no transmission time).
#[derive(Clone, Copy, Debug)]
pub struct UtilizationAware {
    /// Safety margin above the floor (see [`LatencyGreedy::margin`]).
    pub margin: f64,
    /// How hard utilization multiplies the latency score. Zero reduces
    /// this policy to latency-plus-queueing.
    pub utilization_weight: f64,
}

impl Default for UtilizationAware {
    fn default() -> UtilizationAware {
        UtilizationAware {
            margin: 0.1,
            utilization_weight: 4.0,
        }
    }
}

impl PlacementPolicy for UtilizationAware {
    fn name(&self) -> &'static str {
        "utilization-aware"
    }

    fn propose(&self, inputs: &PlacementInputs<'_>) -> WeightMap {
        let m = inputs.metrics;
        let total_bytes = m.bytes_sent.max(1);
        let scores = fill_unobserved(
            inputs
                .server_actors
                .iter()
                .map(|&s| {
                    let rtt = observed_rtt(inputs, s)?;
                    let queue = observed_queueing(inputs, s);
                    // Worst saturation among the server's uplink and its
                    // observer-facing links.
                    let mut busy = m.uplink_utilization(s);
                    for &o in &inputs.observers {
                        busy = busy.max(m.link_utilization(s, o));
                        busy = busy.max(m.link_utilization(o, s));
                    }
                    if busy == 0.0 {
                        // Pure-propagation model or threaded runtime: fall
                        // back to the share of wire bytes touching this
                        // server.
                        busy = m.incident_bytes(s) as f64 / total_bytes as f64;
                    }
                    Some((rtt + queue) * (1.0 + self.utilization_weight * busy))
                })
                .collect(),
        );
        shape_weights(&scores, inputs.current.total(), inputs.floor, self.margin)
    }
}

/// Substitutes the *worst* observed score for servers with no
/// observations at all: weight must never drift toward a server just
/// because nothing is known about it. With no observations anywhere,
/// every score is equal and the shaping degenerates to uniform.
fn fill_unobserved(scores: Vec<Option<f64>>) -> Vec<f64> {
    let worst = scores
        .iter()
        .flatten()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let default = if worst.is_finite() { worst } else { 1.0 };
    scores.into_iter().map(|s| s.unwrap_or(default)).collect()
}

/// Mean observed round-trip propagation between server `s` and the
/// observers, falling back to the mean propagation over every link
/// touching `s` when no observer link has samples yet.
fn observed_rtt(inputs: &PlacementInputs<'_>, s: ActorId) -> Option<f64> {
    let m = inputs.metrics;
    let from_observers: Vec<f64> = inputs
        .observers
        .iter()
        .filter_map(|&o| m.mean_link_rtt(o, s))
        .collect();
    if !from_observers.is_empty() {
        return Some(from_observers.iter().sum::<f64>() / from_observers.len() as f64);
    }
    // Fallback: any link touching s (e.g. server-to-server traffic only).
    let (mut sum, mut k) = (0.0, 0u64);
    for (&(f, t), stat) in &m.delay_by_link {
        if (f == s || t == s) && f != t {
            if let Some(p) = stat.mean_propagation() {
                sum += 2.0 * p; // one-way → RTT estimate
                k += 1;
            }
        }
    }
    (k > 0).then(|| sum / k as f64)
}

/// Mean observed *round-trip* queueing between `s` and the observers:
/// per observer, queueing on the request and reply directions is summed
/// (congestion on either leg delays the operation), then averaged across
/// observers. Zero where nothing has queued.
fn observed_queueing(inputs: &PlacementInputs<'_>, s: ActorId) -> f64 {
    let m = inputs.metrics;
    let (mut sum, mut k) = (0.0, 0u64);
    for &o in &inputs.observers {
        let fwd = m.mean_link_queueing(o, s);
        let back = m.mean_link_queueing(s, o);
        if fwd.is_some() || back.is_some() {
            sum += fwd.unwrap_or(0.0) + back.unwrap_or(0.0);
            k += 1;
        }
    }
    if k == 0 {
        0.0
    } else {
        sum / k as f64
    }
}

/// Turns per-server scores (lower = better) into a safe weight map:
/// weights proportional to `1 / score`, clamped so every server stays at
/// least `floor × (1 + margin)` (strictly above the RP-Integrity floor,
/// hence Property 1 holds by Lemma 1), quantized to an exact rational
/// grid (1/1000, refined by the total's denominator so any exact total
/// is representable) that preserves `total` to the last unit. `margin` is
/// clamped to at least 1 % so the strictly-above-floor guarantee cannot
/// be configured away, and a post-quantization repair pass bumps any
/// lane that f64 rounding left at or below the floor.
///
/// Degenerate inputs (all scores equal, no headroom above the clamp) fall
/// back to the uniform map, which is safe whenever the deployment itself
/// was valid.
///
/// # Panics
///
/// Panics if `scores` is empty or `total` is non-positive.
pub fn shape_weights(scores: &[f64], total: Ratio, floor: Ratio, margin: f64) -> WeightMap {
    let n = scores.len();
    assert!(n > 0, "cannot shape an empty deployment");
    assert!(total.is_positive(), "total weight must be positive");
    let total_f = total.to_f64();
    let min_w = floor.to_f64() * (1.0 + margin.max(0.01));

    // Inverse-score shares (scores clamped away from zero/NaN).
    let inv: Vec<f64> = scores
        .iter()
        .map(|&s| 1.0 / if s.is_finite() && s > 1e-9 { s } else { 1e-9 })
        .collect();
    let inv_sum: f64 = inv.iter().sum();
    let mut w: Vec<f64> = inv.iter().map(|i| total_f * i / inv_sum).collect();

    // Clamp to the floor+margin, redistributing the deficit from lanes
    // with headroom (fixed point in ≤ n rounds; n is small).
    for _ in 0..n {
        let mut deficit = 0.0;
        for x in w.iter_mut() {
            if *x < min_w {
                deficit += min_w - *x;
                *x = min_w;
            }
        }
        if deficit <= 1e-12 {
            break;
        }
        let headroom: f64 = w.iter().map(|x| (x - min_w).max(0.0)).sum();
        if headroom <= deficit {
            // No valid skew exists within the clamp: fall back to uniform.
            let u = total_f / n as f64;
            for x in w.iter_mut() {
                *x = u;
            }
            break;
        }
        for x in w.iter_mut() {
            let h = (*x - min_w).max(0.0);
            *x -= deficit * h / headroom;
        }
    }

    // Quantize to exact rationals, preserving the total to the last
    // unit. The grid is 1/1000 refined by the total's own denominator,
    // so any exact total (e.g. 5/3) is representable — `total` is
    // `1000 · numer` units on the `1/(1000 · denom)` grid by definition.
    let scale = 1000i128 * total.denom();
    let mut q: Vec<i128> = w
        .iter()
        .map(|x| (x * scale as f64).round() as i128)
        .collect();
    let target_total = 1000i128 * total.numer();
    let drift: i128 = target_total - q.iter().sum::<i128>();
    if let Some(max_idx) = (0..q.len()).max_by_key(|&i| q[i]) {
        q[max_idx] += drift;
    }

    // Repair pass: rounding (or the drift dump) may have left a lane at
    // or below the floor. Bump any such lane to the smallest grid value
    // strictly above the floor, paid by the richest lane; if no donor
    // has headroom, no skewed map on this grid is safe — go uniform.
    let u_min = if floor.is_positive() && n > 1 {
        floor.numer() * scale / floor.denom() + 1
    } else {
        0
    };
    for i in 0..n {
        while q[i] < u_min {
            let donor = (0..n)
                .filter(|&j| j != i)
                .max_by_key(|&j| q[j])
                .expect("n > 1 when a lane is deficient");
            let spare = q[donor] - u_min;
            if spare <= 0 {
                let (base, rem) = (target_total / n as i128, target_total % n as i128);
                for (k, u) in q.iter_mut().enumerate() {
                    *u = base + i128::from((k as i128) < rem);
                }
                break;
            }
            let take = spare.min(u_min - q[i]);
            q[donor] -= take;
            q[i] += take;
        }
    }
    WeightMap::from_vec(q.into_iter().map(|v| Ratio::new(v, scale)).collect())
}

/// One planned pairwise transfer: `from` donates `delta` to `to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedTransfer {
    /// The donating server (must invoke the transfer itself — C1).
    pub from: ServerId,
    /// The receiving server.
    pub to: ServerId,
    /// The amount to move.
    pub delta: Ratio,
}

/// Decomposes `current → target` into pairwise transfers.
///
/// Donors are servers whose current weight exceeds their target; receivers
/// the opposite. A greedy matching pairs the largest donor surplus with the
/// largest receiver deficit, so the plan has at most `n − 1` transfers.
///
/// Returns an empty plan when the vectors already match.
///
/// # Panics
///
/// Panics if the totals differ (pairwise reassignment cannot change the
/// total) or the vectors have different lengths.
///
/// # Examples
///
/// ```
/// use awr_quorum::{plan_transfers, PlannedTransfer};
/// use awr_types::{Ratio, WeightMap};
///
/// let current = WeightMap::uniform(4, Ratio::ONE);
/// let target = WeightMap::dec(&["1.2", "1", "1", "0.8"]);
/// let plan = plan_transfers(&current, &target);
/// assert_eq!(plan.len(), 1);
/// assert_eq!(plan[0].delta, Ratio::dec("0.2"));
/// ```
pub fn plan_transfers(current: &WeightMap, target: &WeightMap) -> Vec<PlannedTransfer> {
    assert_eq!(current.len(), target.len(), "vector lengths differ");
    assert_eq!(
        current.total(),
        target.total(),
        "pairwise transfers preserve the total; totals differ"
    );
    let mut surplus: Vec<(ServerId, Ratio)> = Vec::new();
    let mut deficit: Vec<(ServerId, Ratio)> = Vec::new();
    for (s, cur) in current.iter() {
        let t = target.weight(s);
        if cur > t {
            surplus.push((s, cur - t));
        } else if t > cur {
            deficit.push((s, t - cur));
        }
    }
    // Largest first for a short plan.
    surplus.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    deficit.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut plan = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < surplus.len() && j < deficit.len() {
        let d = surplus[i].1.min(deficit[j].1);
        plan.push(PlannedTransfer {
            from: surplus[i].0,
            to: deficit[j].0,
            delta: d,
        });
        surplus[i].1 -= d;
        deficit[j].1 -= d;
        if surplus[i].1.is_zero() {
            i += 1;
        }
        if deficit[j].1.is_zero() {
            j += 1;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{integrity_holds, rp_floor, rp_integrity_holds};
    use awr_sim::Delivery;

    fn a(i: usize) -> ActorId {
        ActorId(i)
    }

    /// Synthetic metrics: clients at indices ≥ n, per-link propagation
    /// from a matrix, optional queueing and busy time.
    fn metrics_with(prop: &[(usize, usize, u64)], queued: &[(usize, usize, u64)]) -> Metrics {
        let mut m = Metrics::default();
        for &(f, t, p) in prop {
            m.record_send(
                "R",
                100,
                a(f),
                a(t),
                Delivery {
                    queued: 0,
                    transmission: 0,
                    propagation: p,
                },
            );
        }
        for &(f, t, q) in queued {
            m.record_send(
                "R",
                100,
                a(f),
                a(t),
                Delivery {
                    queued: q,
                    transmission: 0,
                    propagation: 0,
                },
            );
        }
        m
    }

    fn inputs<'x>(m: &'x Metrics, w: &'x WeightMap, f: usize) -> PlacementInputs<'x> {
        let n = w.len();
        let floor = rp_floor(w.total(), n, f);
        PlacementInputs::for_prefix_servers(m, w, floor, f, vec![a(n)])
    }

    #[test]
    fn static_is_identity() {
        let w = WeightMap::dec(&["1.2", "0.9", "0.9"]);
        let m = Metrics::default();
        let inp = inputs(&m, &w, 1);
        assert_eq!(Static.propose(&inp), w);
    }

    #[test]
    fn latency_greedy_prefers_near_servers() {
        // Observer is actor 3; server 0 is near, 1 and 2 far.
        let w = WeightMap::uniform(3, Ratio::ONE);
        let m = metrics_with(
            &[
                (3, 0, 1_000),
                (0, 3, 1_000),
                (3, 1, 50_000),
                (1, 3, 50_000),
                (3, 2, 80_000),
                (2, 3, 80_000),
            ],
            &[],
        );
        let inp = inputs(&m, &w, 1);
        let p = LatencyGreedy::default().propose(&inp);
        assert_eq!(p.total(), w.total());
        assert_eq!(p.max_weight(), p.weight(ServerId(0)));
        // Both far servers clamp to the floor margin; the near server
        // holds all the headroom.
        assert!(p.weight(ServerId(1)) >= p.weight(ServerId(2)));
        assert!(p.weight(ServerId(0)) > Ratio::ONE);
        assert!(rp_integrity_holds(&p, inp.floor), "{p}");
        assert!(integrity_holds(&p, 1), "{p}");
    }

    #[test]
    fn latency_greedy_without_data_is_uniform() {
        let w = WeightMap::dec(&["1.5", "0.75", "0.75"]);
        let m = Metrics::default();
        let inp = inputs(&m, &w, 1);
        let p = LatencyGreedy::default().propose(&inp);
        assert_eq!(p, WeightMap::uniform(3, Ratio::ONE));
    }

    #[test]
    fn utilization_aware_penalizes_queued_links() {
        // Two equally-near servers, but server 1's observer link queues
        // badly (cross traffic): weight should prefer server 0.
        let w = WeightMap::uniform(3, Ratio::ONE);
        let m = metrics_with(
            &[
                (3, 0, 10_000),
                (0, 3, 10_000),
                (3, 1, 10_000),
                (1, 3, 10_000),
                (3, 2, 90_000),
                (2, 3, 90_000),
            ],
            &[(1, 3, 400_000)],
        );
        let inp = inputs(&m, &w, 1);
        let p = UtilizationAware::default().propose(&inp);
        assert!(
            p.weight(ServerId(0)) > p.weight(ServerId(1)),
            "hot link must shed weight: {p}"
        );
        assert_eq!(p.total(), w.total());
        assert!(rp_integrity_holds(&p, inp.floor));
    }

    #[test]
    fn utilization_aware_uses_busy_time() {
        // Same propagation everywhere; server 1's uplink is saturated.
        let w = WeightMap::uniform(3, Ratio::ONE);
        let mut m = metrics_with(
            &[
                (3, 0, 10_000),
                (0, 3, 10_000),
                (3, 1, 10_000),
                (1, 3, 10_000),
                (3, 2, 10_000),
                (2, 3, 10_000),
            ],
            &[],
        );
        m.last_time = awr_sim::Time(1_000_000);
        *m.link_busy.entry((a(1), a(3))).or_insert(0) += 900_000; // 90 % busy
        let inp = inputs(&m, &w, 1);
        let p = UtilizationAware::default().propose(&inp);
        assert_eq!(p.min_weight(), p.weight(ServerId(1)), "{p}");
        assert!(p.weight(ServerId(0)) > p.weight(ServerId(1)));
    }

    #[test]
    fn shape_weights_clamps_and_preserves_total() {
        let total = Ratio::integer(5);
        let floor = rp_floor(total, 5, 1); // 5/8
        let w = shape_weights(&[1.0, 100.0, 100.0, 100.0, 100.0], total, floor, 0.1);
        assert_eq!(w.total(), total);
        let min_allowed = floor; // strictly above
        for (_, x) in w.iter() {
            assert!(x > min_allowed, "{x} <= floor {min_allowed}");
        }
        assert!(integrity_holds(&w, 1), "{w}");
        assert!(rp_integrity_holds(&w, floor), "{w}");
        // The fast server got nearly all the headroom.
        assert!(w.weight(ServerId(0)) > Ratio::integer(2));
    }

    #[test]
    fn shape_weights_margin_zero_still_clears_the_floor() {
        // margin = 0 must not be able to configure away the
        // strictly-above-floor guarantee (C2 feasibility).
        let total = Ratio::integer(5);
        let floor = rp_floor(total, 5, 1);
        let w = shape_weights(&[1.0, 50.0, 50.0, 50.0, 50.0], total, floor, 0.0);
        assert_eq!(w.total(), total);
        for (_, x) in w.iter() {
            assert!(x > floor, "{x} <= floor {floor}");
        }
        assert!(rp_integrity_holds(&w, floor), "{w}");
    }

    #[test]
    fn unobserved_servers_do_not_attract_weight() {
        // Servers 0–1 observed (fast/slow), server 2 never observed: it
        // must score like the worst observed server, not the best.
        let w = WeightMap::uniform(3, Ratio::ONE);
        let m = metrics_with(
            &[(3, 0, 5_000), (0, 3, 5_000), (3, 1, 80_000), (1, 3, 80_000)],
            &[],
        );
        let inp = inputs(&m, &w, 1);
        for policy in [
            &LatencyGreedy::default() as &dyn PlacementPolicy,
            &UtilizationAware::default(),
        ] {
            let p = policy.propose(&inp);
            assert_eq!(
                p.weight(ServerId(2)),
                p.min_weight(),
                "{}: unknown server must not gain: {p}",
                policy.name()
            );
            assert_eq!(p.max_weight(), p.weight(ServerId(0)), "{}", policy.name());
        }
    }

    #[test]
    fn shape_weights_handles_off_grid_totals() {
        // Total 5/3 is not on the 1/1000 grid; the refined grid must
        // represent it exactly instead of panicking.
        let w = WeightMap::uniform(5, Ratio::new(1, 3)); // total 5/3
        let m = metrics_with(
            &[(5, 0, 1_000), (0, 5, 1_000), (5, 1, 50_000), (1, 5, 50_000)],
            &[],
        );
        let floor = rp_floor(w.total(), 5, 1);
        let inp = PlacementInputs::for_prefix_servers(&m, &w, floor, 1, vec![a(5)]);
        let p = LatencyGreedy::default().propose(&inp);
        assert_eq!(p.total(), w.total());
        assert!(rp_integrity_holds(&p, floor), "{p}");
    }

    #[test]
    fn shape_weights_degenerate_falls_back_to_uniform() {
        // One server (n = f impossible; use tight clamp): margin so large
        // that no headroom remains → uniform.
        let total = Ratio::integer(4);
        let floor = rp_floor(total, 4, 1); // 4/6 = 2/3; 2/3 × 1.5 = 1 ⇒ no headroom
        let w = shape_weights(&[1.0, 2.0, 3.0, 4.0], total, floor, 0.5);
        assert_eq!(w, WeightMap::uniform(4, Ratio::ONE));
    }

    #[test]
    fn plan_roundtrip_reaches_target() {
        let current = WeightMap::uniform(7, Ratio::ONE);
        let target = WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"]);
        let plan = plan_transfers(&current, &target);
        assert!(!plan.is_empty());
        let mut w = current.clone();
        for t in &plan {
            assert!(t.from != t.to);
            w.add(t.from, -t.delta);
            w.add(t.to, t.delta);
        }
        assert_eq!(w, target);
    }

    #[test]
    fn plan_empty_at_target() {
        let w = WeightMap::uniform(4, Ratio::ONE);
        assert!(plan_transfers(&w, &w).is_empty());
    }

    #[test]
    #[should_panic(expected = "totals differ")]
    fn plan_rejects_total_mismatch() {
        let a = WeightMap::dec(&["1", "1"]);
        let b = WeightMap::dec(&["1", "2"]);
        let _ = plan_transfers(&a, &b);
    }
}
