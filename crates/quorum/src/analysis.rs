//! Quorum-system analysis helpers used by the experiment harnesses
//! (E3 flexibility, E11 quorum sweeps).

use std::collections::BTreeSet;

use awr_types::{Ratio, ServerId, WeightMap};

use crate::{QuorumSystem, WeightedMajorityQuorumSystem};

/// The size of the smallest quorum that avoids every server in `excluded`
/// (e.g. failed or slow servers) — `usize::MAX`-free: returns `None` when the
/// remaining servers cannot form a quorum at all.
///
/// This is the §V.C question: “can the others still form a small quorum when
/// `s1`, `s2` are failed or slow?”
///
/// # Examples
///
/// ```
/// use awr_quorum::{smallest_quorum_avoiding, WeightedMajorityQuorumSystem};
/// use awr_types::{ServerId, WeightMap};
///
/// // §V.C: weights 1.6, 1.4, 0.8×5; s1 and s2 slow → smallest live quorum is 5.
/// let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
/// let q = WeightedMajorityQuorumSystem::new(w);
/// let slow = [ServerId(0), ServerId(1)].into_iter().collect();
/// assert_eq!(smallest_quorum_avoiding(&q, &slow), Some(5));
/// ```
pub fn smallest_quorum_avoiding(
    q: &WeightedMajorityQuorumSystem,
    excluded: &BTreeSet<ServerId>,
) -> Option<usize> {
    let mut candidates: Vec<ServerId> = ServerId::all(q.universe_size())
        .filter(|s| !excluded.contains(s))
        .collect();
    candidates.sort_by(|a, b| {
        q.weights()
            .weight(*b)
            .cmp(&q.weights().weight(*a))
            .then(a.cmp(b))
    });
    let goal = q.threshold_total().half();
    let mut acc = Ratio::ZERO;
    for (k, s) in candidates.iter().enumerate() {
        acc += q.weights().weight(*s);
        if acc > goal {
            return Some(k + 1);
        }
    }
    None
}

/// Expected quorum-formation latency: given a per-server response latency
/// vector, the time at which the fastest quorum completes (i.e. the minimal,
/// over quorums `Q`, of the maximal latency inside `Q`).
///
/// For weighted majorities this is computable greedily: sort servers by
/// latency ascending and take the shortest prefix that is a quorum; the
/// answer is that prefix's last latency. (Any quorum's max latency is at
/// least the latency of its slowest member, and prefixes dominate.)
pub fn fastest_quorum_latency(q: &WeightedMajorityQuorumSystem, latencies: &[f64]) -> Option<f64> {
    assert_eq!(
        latencies.len(),
        q.universe_size(),
        "latency vector length must equal n"
    );
    let mut order: Vec<usize> = (0..latencies.len()).collect();
    order.sort_by(|&a, &b| latencies[a].total_cmp(&latencies[b]));
    let goal = q.threshold_total().half();
    let mut acc = Ratio::ZERO;
    for &i in &order {
        acc += q.weights().weight(ServerId(i as u32));
        if acc > goal {
            return Some(latencies[i]);
        }
    }
    None
}

/// A row of the E11 sweep: how quorum size responds to weight skew.
#[derive(Clone, Debug, PartialEq)]
pub struct SkewRow {
    /// Weight given to each of the `k` heavy servers.
    pub heavy_weight: Ratio,
    /// Smallest quorum size.
    pub min_quorum: usize,
    /// Whether Property 1 still holds for the given `f`.
    pub available: bool,
}

/// Sweeps weight skew: `k` servers get weight `w_heavy`, the rest share the
/// remaining weight equally (total fixed at `n`), reporting quorum size and
/// Property-1 availability for each step.
pub fn skew_sweep(n: usize, f: usize, k: usize, steps: &[Ratio]) -> Vec<SkewRow> {
    assert!(k < n, "need at least one light server");
    let total = Ratio::integer(n as i64);
    steps
        .iter()
        .map(|&heavy| {
            let rest = (total - heavy * Ratio::integer(k as i64)) / Ratio::integer((n - k) as i64);
            let w = WeightMap::from_fn(n, |s| if s.index() < k { heavy } else { rest });
            let qs = WeightedMajorityQuorumSystem::new(w.clone());
            SkewRow {
                heavy_weight: heavy,
                min_quorum: qs.min_quorum_size(),
                available: crate::integrity_holds(&w, f),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avoiding_failed_servers_section5c() {
        let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
        let q = WeightedMajorityQuorumSystem::new(w);
        // Nothing failed: smallest quorum is 3 (1.6+1.4+0.8 = 3.8 > 3.5).
        assert_eq!(smallest_quorum_avoiding(&q, &BTreeSet::new()), Some(3));
        // s1, s2 failed: five 0.8s needed (4.0 > 3.5; four give 3.2).
        let failed: BTreeSet<ServerId> = [ServerId(0), ServerId(1)].into();
        assert_eq!(smallest_quorum_avoiding(&q, &failed), Some(5));
        // Everything failed: no quorum.
        let all: BTreeSet<ServerId> = ServerId::all(7).collect();
        assert_eq!(smallest_quorum_avoiding(&q, &all), None);
    }

    #[test]
    fn fastest_quorum_prefers_heavy_fast_servers() {
        // Two heavy fast servers can outvote three slow ones.
        let w = WeightMap::dec(&["2", "2", "1", "1", "1"]);
        let q = WeightedMajorityQuorumSystem::new(w);
        let lat = [10.0, 12.0, 100.0, 110.0, 120.0];
        // {s1, s2} = 4 > 3.5 → latency 12.
        assert_eq!(fastest_quorum_latency(&q, &lat), Some(12.0));
        // Uniform weights need 3 of 5 → latency 100.
        let u = WeightedMajorityQuorumSystem::new(WeightMap::uniform(5, Ratio::ONE));
        assert_eq!(fastest_quorum_latency(&u, &lat), Some(100.0));
    }

    #[test]
    fn skew_sweep_shrinks_quorums_until_unavailable() {
        let steps: Vec<Ratio> = ["1", "1.5", "2", "2.5", "3"]
            .iter()
            .map(|s| Ratio::dec(s))
            .collect();
        let rows = skew_sweep(7, 2, 2, &steps);
        assert_eq!(rows.len(), 5);
        // Quorum size is non-increasing in skew.
        for w in rows.windows(2) {
            assert!(w[1].min_quorum <= w[0].min_quorum);
        }
        // Uniform start: quorum 4, available.
        assert_eq!(rows[0].min_quorum, 4);
        assert!(rows[0].available);
        // Extreme skew: two servers with weight 3 each = 6 of 7 ≥ 3.5 → unavailable.
        assert!(!rows[4].available);
    }

    #[test]
    #[should_panic(expected = "latency vector length")]
    fn latency_length_mismatch_panics() {
        let q = WeightedMajorityQuorumSystem::new(WeightMap::uniform(3, Ratio::ONE));
        let _ = fastest_quorum_latency(&q, &[1.0]);
    }
}
