//! The grid quorum system (Naor & Wool [2]; cited in the paper's §I as an
//! alternative to majority systems).
//!
//! Servers are arranged in an `r × c` grid; a quorum is one full row plus
//! one element from every row (here: the classic "row + column cover"
//! formulation — a full row and a full column). Quorums have size
//! `r + c − 1 = O(√n)`, much smaller than majorities, at the price of lower
//! fault tolerance.

use std::collections::BTreeSet;

use awr_types::ServerId;

use crate::QuorumSystem;

/// A grid quorum system over `rows × cols` servers: a set is a quorum iff
/// it contains every element of some row **and** every element of some
/// column.
///
/// Server `ServerId(i)` sits at `(i / cols, i % cols)`.
///
/// # Examples
///
/// ```
/// use awr_quorum::{GridQuorumSystem, QuorumSystem};
/// use awr_types::ServerId;
///
/// let g = GridQuorumSystem::new(3, 3);
/// // Row 0 = {0,1,2} plus column 0 = {0,3,6}: a quorum of 5 = 3 + 3 − 1.
/// let q: Vec<ServerId> = [0u32, 1, 2, 3, 6].iter().map(|&i| ServerId(i)).collect();
/// assert!(g.is_quorum_slice(&q));
/// assert_eq!(g.min_quorum_size(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridQuorumSystem {
    rows: usize,
    cols: usize,
}

impl GridQuorumSystem {
    /// Creates an `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> GridQuorumSystem {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        GridQuorumSystem { rows, cols }
    }

    /// Grid position of a server.
    pub fn position(&self, s: ServerId) -> (usize, usize) {
        (s.index() / self.cols, s.index() % self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

impl QuorumSystem for GridQuorumSystem {
    fn universe_size(&self) -> usize {
        self.rows * self.cols
    }

    fn is_quorum(&self, servers: &BTreeSet<ServerId>) -> bool {
        let mut row_counts = vec![0usize; self.rows];
        let mut col_counts = vec![0usize; self.cols];
        for s in servers {
            if s.index() >= self.universe_size() {
                continue;
            }
            let (r, c) = self.position(*s);
            row_counts[r] += 1;
            col_counts[c] += 1;
        }
        let full_row = row_counts.contains(&self.cols);
        let full_col = col_counts.contains(&self.rows);
        full_row && full_col
    }

    fn min_quorum_size(&self) -> usize {
        self.rows + self.cols - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::verify_intersection;

    fn ids(v: &[u32]) -> BTreeSet<ServerId> {
        v.iter().map(|&i| ServerId(i)).collect()
    }

    #[test]
    fn row_plus_column_is_quorum() {
        let g = GridQuorumSystem::new(3, 3);
        assert!(g.is_quorum(&ids(&[0, 1, 2, 3, 6]))); // row 0 + col 0
        assert!(g.is_quorum(&ids(&[3, 4, 5, 1, 7]))); // row 1 + col 1
                                                      // A row alone is not a quorum.
        assert!(!g.is_quorum(&ids(&[0, 1, 2])));
        // A column alone is not a quorum.
        assert!(!g.is_quorum(&ids(&[0, 3, 6])));
    }

    #[test]
    fn quorum_size_is_sqrt_scale() {
        assert_eq!(GridQuorumSystem::new(3, 3).min_quorum_size(), 5);
        assert_eq!(GridQuorumSystem::new(4, 4).min_quorum_size(), 7);
        assert_eq!(GridQuorumSystem::new(5, 5).min_quorum_size(), 9);
        // vs majority of 25: 13.
        assert!(GridQuorumSystem::new(5, 5).min_quorum_size() < 13);
    }

    #[test]
    fn grids_intersect() {
        for (r, c) in [(2usize, 2usize), (2, 3), (3, 3)] {
            assert!(verify_intersection(&GridQuorumSystem::new(r, c)), "{r}x{c}");
        }
    }

    #[test]
    fn non_square_grid() {
        let g = GridQuorumSystem::new(2, 4);
        assert_eq!(g.universe_size(), 8);
        assert_eq!(g.min_quorum_size(), 5);
        assert_eq!(g.position(ServerId(5)), (1, 1));
        assert!(g.is_quorum(&ids(&[0, 1, 2, 3, 7]))); // row 0 + col 3
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = GridQuorumSystem::new(0, 3);
    }
}
