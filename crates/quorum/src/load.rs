//! Quorum-system *load* (Naor & Wool [2]; the paper's §I cites this line
//! of work when introducing quorum systems).
//!
//! The load of a quorum system under an access strategy is the busiest
//! server's access probability; the system's load is the minimum over
//! strategies. Low load = good throughput scaling. We compute the exact
//! load for small systems by linear programming over minimal quorums —
//! implemented here as a simple iterative (multiplicative-weights) solver,
//! adequate for the `n ≤ 20` analysis sizes this crate targets.

use awr_types::ServerId;

use crate::system::minimal_quorums;
use crate::QuorumSystem;

/// The result of a load computation.
#[derive(Clone, Debug)]
pub struct LoadAnalysis {
    /// The computed (approximate) system load in `[1/n, 1]`.
    pub load: f64,
    /// The strategy: one probability per minimal quorum.
    pub strategy: Vec<f64>,
    /// Per-server access probabilities under the strategy.
    pub per_server: Vec<f64>,
}

/// Approximates the load of a quorum system by multiplicative-weights over
/// its minimal quorums: repeatedly shift probability mass toward quorums
/// that avoid the currently-busiest servers.
///
/// Exact for symmetric systems (majority, square grids) and within ~1 % in
/// general at the default iteration count.
///
/// # Panics
///
/// Panics if the system has no quorums or more than 2^20 minimal quorums.
pub fn approximate_load<Q: QuorumSystem + ?Sized>(q: &Q, iterations: usize) -> LoadAnalysis {
    let quorums = minimal_quorums(q);
    assert!(!quorums.is_empty(), "system has no quorums");
    let n = q.universe_size();
    let m = quorums.len();
    let mut weights = vec![1.0f64; m];

    let mut best: Option<LoadAnalysis> = None;
    for _ in 0..iterations.max(1) {
        let total: f64 = weights.iter().sum();
        let strategy: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut per_server = vec![0.0f64; n];
        for (p, quorum) in strategy.iter().zip(&quorums) {
            for s in quorum {
                per_server[s.index()] += p;
            }
        }
        let load = per_server.iter().cloned().fold(0.0, f64::max);
        if best.as_ref().map(|b| load < b.load).unwrap_or(true) {
            best = Some(LoadAnalysis {
                load,
                strategy: strategy.clone(),
                per_server: per_server.clone(),
            });
        }
        // Penalize quorums that touch heavily-loaded servers.
        for (w, quorum) in weights.iter_mut().zip(&quorums) {
            let q_load: f64 = quorum.iter().map(|s| per_server[s.index()]).sum();
            let avg = q_load / quorum.len() as f64;
            *w *= (-(avg - load / 2.0).max(0.0)).exp().max(0.2);
        }
    }
    best.expect("at least one iteration ran")
}

/// The trivially-optimal lower bound `max(1/c(Q), c(Q)/n)` where `c(Q)` is
/// the smallest quorum size (Naor–Wool Proposition 4.3 simplification).
pub fn load_lower_bound<Q: QuorumSystem + ?Sized>(q: &Q) -> f64 {
    let c = q.min_quorum_size() as f64;
    let n = q.universe_size() as f64;
    (1.0 / c).max(c / n)
}

/// Per-server access frequency implied by a weighted-majority system when
/// clients always use the *smallest* quorum (greedy-by-weight): heavy
/// servers absorb all traffic — the load-concentration effect weighted
/// quorums trade for latency.
pub fn greedy_weighted_load(
    system: &crate::WeightedMajorityQuorumSystem,
) -> Option<(f64, Vec<ServerId>)> {
    let q = system.smallest_quorum()?;
    Some((1.0, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridQuorumSystem, MajorityQuorumSystem, WeightedMajorityQuorumSystem};
    use awr_types::{Ratio, WeightMap};

    #[test]
    fn majority_load_is_about_half() {
        // Majority systems have load ⌈(n+1)/2⌉ / n ≈ 1/2.
        let q = MajorityQuorumSystem::new(5);
        let a = approximate_load(&q, 200);
        assert!(
            (a.load - 0.6).abs() < 0.05,
            "5-server majority load ≈ 3/5, got {}",
            a.load
        );
        // Strategy is a distribution.
        let sum: f64 = a.strategy.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grid_load_achieves_its_lower_bound() {
        // For the row+column grid the symmetric strategy is optimal: load
        // = (2√n − 1)/n = 5/9 for 3×3 — the same as a 9-server majority's.
        // (The grid's advantage over majorities is quorum *size*, not load;
        // Naor–Wool's low-load constructions use different quorums.)
        let grid = GridQuorumSystem::new(3, 3);
        let a = approximate_load(&grid, 300);
        let bound = 5.0 / 9.0;
        assert!(
            (a.load - bound).abs() < 0.02,
            "grid load {} should sit at its bound {bound}",
            a.load
        );
    }

    #[test]
    fn lower_bound_holds() {
        for n in [3usize, 5, 7] {
            let q = MajorityQuorumSystem::new(n);
            let a = approximate_load(&q, 200);
            assert!(a.load >= load_lower_bound(&q) - 1e-9, "n={n}");
        }
        let g = GridQuorumSystem::new(3, 3);
        assert!(approximate_load(&g, 300).load >= load_lower_bound(&g) - 1e-9);
    }

    #[test]
    fn greedy_weighted_concentrates_load() {
        let w = WeightMap::dec(&["2", "2", "1", "1", "1"]);
        let q = WeightedMajorityQuorumSystem::new(w);
        let (load, quorum) = greedy_weighted_load(&q).unwrap();
        assert_eq!(load, 1.0); // the heavy pair serves every access
        assert_eq!(quorum.len(), 2);
    }

    #[test]
    fn zero_weight_system_has_no_greedy_quorum() {
        let q = WeightedMajorityQuorumSystem::new(WeightMap::uniform(3, Ratio::ZERO));
        assert!(greedy_weighted_load(&q).is_none());
    }
}
