//! The regular majority quorum system (MQS).
//!
//! Every quorum is a strict majority of servers. Simple, optimally
//! fault-tolerant (`f < n/2`), and the baseline the paper's weighted systems
//! improve upon (§I).

use std::collections::BTreeSet;

use awr_types::ServerId;

use crate::QuorumSystem;

/// The majority quorum system over `n` servers: a set is a quorum iff it
/// contains more than `n / 2` distinct servers.
///
/// # Examples
///
/// ```
/// use awr_quorum::{MajorityQuorumSystem, QuorumSystem};
/// use awr_types::ServerId;
///
/// let mqs = MajorityQuorumSystem::new(5);
/// assert_eq!(mqs.min_quorum_size(), 3);
/// assert!(mqs.is_quorum_slice(&[ServerId(0), ServerId(2), ServerId(4)]));
/// assert!(!mqs.is_quorum_slice(&[ServerId(0), ServerId(2)]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MajorityQuorumSystem {
    n: usize,
}

impl MajorityQuorumSystem {
    /// Creates the majority system over `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> MajorityQuorumSystem {
        assert!(n > 0, "majority quorum system needs at least one server");
        MajorityQuorumSystem { n }
    }

    /// The maximum number of crash faults the system tolerates while staying
    /// available: `⌈n/2⌉ − 1`, i.e. `f < n/2`.
    pub fn max_faults(&self) -> usize {
        self.n.div_ceil(2) - 1
    }

    /// Quorum cardinality threshold: `⌊n/2⌋ + 1`.
    pub fn threshold(&self) -> usize {
        self.n / 2 + 1
    }
}

impl QuorumSystem for MajorityQuorumSystem {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn is_quorum(&self, servers: &BTreeSet<ServerId>) -> bool {
        let in_range = servers.iter().filter(|s| s.index() < self.n).count();
        in_range >= self.threshold()
    }

    fn min_quorum_size(&self) -> usize {
        self.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::verify_intersection;

    #[test]
    fn thresholds() {
        assert_eq!(MajorityQuorumSystem::new(1).threshold(), 1);
        assert_eq!(MajorityQuorumSystem::new(4).threshold(), 3);
        assert_eq!(MajorityQuorumSystem::new(5).threshold(), 3);
        assert_eq!(MajorityQuorumSystem::new(7).threshold(), 4);
    }

    #[test]
    fn fault_tolerance_is_optimal() {
        assert_eq!(MajorityQuorumSystem::new(3).max_faults(), 1);
        assert_eq!(MajorityQuorumSystem::new(4).max_faults(), 1);
        assert_eq!(MajorityQuorumSystem::new(5).max_faults(), 2);
        assert_eq!(MajorityQuorumSystem::new(7).max_faults(), 3);
    }

    #[test]
    fn survivors_form_quorum_after_max_faults() {
        for n in 1..=9 {
            let q = MajorityQuorumSystem::new(n);
            let f = q.max_faults();
            let survivors: BTreeSet<ServerId> = (f..n).map(|i| ServerId(i as u32)).collect();
            assert!(q.is_quorum(&survivors), "n={n} f={f}");
        }
    }

    #[test]
    fn intersection_exhaustive_small_n() {
        for n in 1..=8 {
            assert!(verify_intersection(&MajorityQuorumSystem::new(n)), "n={n}");
        }
    }

    #[test]
    fn out_of_range_servers_ignored() {
        let q = MajorityQuorumSystem::new(3);
        let set: BTreeSet<ServerId> = [ServerId(7), ServerId(8), ServerId(9)].into();
        assert!(!q.is_quorum(&set));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = MajorityQuorumSystem::new(0);
    }
}
