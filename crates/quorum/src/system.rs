//! The quorum-system abstraction.
//!
//! A quorum system over a set of servers is a collection of subsets
//! (*quorums*) such that every two quorums intersect (paper §I). Protocols
//! in this workspace never enumerate quorums online; they ask the predicate
//! "is this set of responders a quorum?" — which is how both Algorithm 3
//! (`|C| > f`, `n − f` acks) and Algorithm 5 (`is_quorum(Q)`) consume
//! quorum systems.

use std::collections::BTreeSet;

use awr_types::ServerId;

/// A predicate-style quorum system over servers `0..n`.
///
/// Implementations must guarantee **intersection**: for any two sets `A`,
/// `B` with `is_quorum(A) && is_quorum(B)`, `A ∩ B ≠ ∅`. The property-based
/// tests in this crate check intersection exhaustively for small `n` for
/// every implementation shipped here.
pub trait QuorumSystem {
    /// Number of servers in the universe.
    fn universe_size(&self) -> usize;

    /// Returns `true` if `servers` contains a quorum.
    fn is_quorum(&self, servers: &BTreeSet<ServerId>) -> bool;

    /// Returns `true` if `servers` (given as a slice, possibly unsorted,
    /// duplicates allowed) contains a quorum. Convenience wrapper.
    fn is_quorum_slice(&self, servers: &[ServerId]) -> bool {
        let set: BTreeSet<ServerId> = servers.iter().copied().collect();
        self.is_quorum(&set)
    }

    /// The size of the smallest quorum, computed by brute force unless the
    /// implementation can do better. Intended for analysis, not hot paths.
    fn min_quorum_size(&self) -> usize {
        let n = self.universe_size();
        for k in 0..=n {
            if any_subset_of_size_is_quorum(self, k) {
                return k;
            }
        }
        n + 1 // no quorum exists at all (unavailable system)
    }
}

/// Returns `true` if some subset of exactly `k` servers is a quorum.
fn any_subset_of_size_is_quorum<Q: QuorumSystem + ?Sized>(q: &Q, k: usize) -> bool {
    let n = q.universe_size();
    if k > n {
        return false;
    }
    // Iterate k-combinations via the revolving-door order on indices.
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        let set: BTreeSet<ServerId> = combo.iter().map(|&i| ServerId(i as u32)).collect();
        if q.is_quorum(&set) {
            return true;
        }
        // next combination
        let mut i = k;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if combo[i] != i + n - k {
                break;
            }
            if i == 0 {
                return false;
            }
        }
        if combo[i] == i + n - k {
            return false;
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

/// Enumerates all *minimal* quorums of a system (no proper subset is a
/// quorum). Exponential in `n`; for analysis of small systems only.
///
/// # Panics
///
/// Panics if `universe_size() > 20` to avoid accidental blow-ups.
pub fn minimal_quorums<Q: QuorumSystem + ?Sized>(q: &Q) -> Vec<BTreeSet<ServerId>> {
    let n = q.universe_size();
    assert!(n <= 20, "minimal_quorums is exponential; n = {n} > 20");
    let mut minimal: Vec<BTreeSet<ServerId>> = Vec::new();
    for mask in 1u32..(1 << n) {
        let set: BTreeSet<ServerId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| ServerId(i as u32))
            .collect();
        if !q.is_quorum(&set) {
            continue;
        }
        // minimal iff removing any element breaks quorum-ness
        let is_min = set.iter().all(|s| {
            let mut smaller = set.clone();
            smaller.remove(s);
            !q.is_quorum(&smaller)
        });
        if is_min {
            minimal.push(set);
        }
    }
    minimal
}

/// Checks the intersection property exhaustively for `n ≤ 16`:
/// every pair of quorums (it suffices to check minimal ones) intersects.
pub fn verify_intersection<Q: QuorumSystem + ?Sized>(q: &Q) -> bool {
    let mins = minimal_quorums(q);
    for (i, a) in mins.iter().enumerate() {
        for b in mins.iter().skip(i + 1) {
            if a.intersection(b).next().is_none() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial threshold system for testing the helpers.
    struct AtLeast {
        n: usize,
        k: usize,
    }

    impl QuorumSystem for AtLeast {
        fn universe_size(&self) -> usize {
            self.n
        }
        fn is_quorum(&self, servers: &BTreeSet<ServerId>) -> bool {
            servers.iter().filter(|s| s.index() < self.n).count() >= self.k
        }
    }

    #[test]
    fn min_quorum_size_threshold() {
        let q = AtLeast { n: 5, k: 3 };
        assert_eq!(q.min_quorum_size(), 3);
        let all = AtLeast { n: 4, k: 4 };
        assert_eq!(all.min_quorum_size(), 4);
    }

    #[test]
    fn min_quorum_size_unavailable() {
        let q = AtLeast { n: 3, k: 7 };
        assert_eq!(q.min_quorum_size(), 4); // n + 1 sentinel
    }

    #[test]
    fn minimal_quorums_threshold() {
        let q = AtLeast { n: 4, k: 3 };
        let mins = minimal_quorums(&q);
        assert_eq!(mins.len(), 4); // C(4,3)
        assert!(mins.iter().all(|m| m.len() == 3));
    }

    #[test]
    fn intersection_majority_holds() {
        assert!(verify_intersection(&AtLeast { n: 5, k: 3 }));
        // k = 2 of 5 does NOT intersect
        assert!(!verify_intersection(&AtLeast { n: 5, k: 2 }));
    }

    #[test]
    fn is_quorum_slice_dedups() {
        let q = AtLeast { n: 3, k: 2 };
        let s = ServerId(0);
        assert!(!q.is_quorum_slice(&[s, s, s]));
        assert!(q.is_quorum_slice(&[s, ServerId(1)]));
    }
}
