//! Criterion: end-to-end simulated cost of one `transfer` and one
//! `read_changes` invocation (events processed per op; virtual network).

use std::hint::black_box;

use awr_core::{RpConfig, RpHarness};
use awr_sim::UniformLatency;
use awr_types::{Ratio, ServerId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("restricted_protocol");
    g.sample_size(20);
    for &(n, f) in &[(4usize, 1usize), (7, 2), (13, 4)] {
        g.bench_with_input(
            BenchmarkId::new("transfer", format!("n{n}f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let mut h = RpHarness::build(
                        RpConfig::uniform(n, f),
                        1,
                        7,
                        UniformLatency::new(1_000, 50_000),
                    );
                    let out = h
                        .transfer_and_wait(ServerId(1), ServerId(0), Ratio::new(1, 10))
                        .unwrap();
                    black_box(out)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("read_changes", format!("n{n}f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let mut h = RpHarness::build(
                        RpConfig::uniform(n, f),
                        1,
                        7,
                        UniformLatency::new(1_000, 50_000),
                    );
                    black_box(h.read_changes(0, ServerId(0)).unwrap())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
