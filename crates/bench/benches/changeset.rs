//! Criterion: change-set operations (the hot path of every message).
//!
//! Each operation is measured twice: against the incrementally-accounted
//! [`ChangeSet`] and against [`NaiveChangeSet`], the seed's scan-based
//! representation, so the speedup of the cached implementation is visible
//! directly in the output (`changeset/...` vs `changeset/naive_...`).

use std::hint::black_box;

use awr_bench::naive_changeset::NaiveChangeSet;
use awr_types::{Change, ChangeSet, Ratio, ServerId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn set_with(n: usize, extra: usize) -> ChangeSet {
    let mut c = ChangeSet::uniform_initial(n, Ratio::ONE);
    for i in 0..extra {
        let s = ServerId((i % n) as u32);
        let t = ServerId(((i + 1) % n) as u32);
        c.insert(Change::new(s, 2 + i as u64, s, Ratio::new(-1, 100)));
        c.insert(Change::new(s, 2 + i as u64, t, Ratio::new(1, 100)));
    }
    c
}

fn naive(c: &ChangeSet) -> NaiveChangeSet {
    c.iter().copied().collect()
}

fn bench_changeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("changeset");
    for &extra in &[10usize, 100, 1000] {
        let a = set_with(7, extra);
        let na = naive(&a);
        let mut b2 = a.clone();
        b2.insert(Change::new(
            ServerId(0),
            9999,
            ServerId(1),
            Ratio::new(1, 10),
        ));
        let nb2 = naive(&b2);
        g.bench_with_input(BenchmarkId::new("server_weight", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).server_weight(ServerId(0)))
        });
        g.bench_with_input(
            BenchmarkId::new("naive_server_weight", extra),
            &extra,
            |b, _| b.iter(|| black_box(&na).server_weight(ServerId(0))),
        );
        g.bench_with_input(BenchmarkId::new("union", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).union(black_box(&b2)))
        });
        g.bench_with_input(BenchmarkId::new("naive_union", extra), &extra, |b, _| {
            b.iter(|| black_box(&na).union(black_box(&nb2)))
        });
        // Idempotent union: re-receiving an equal set (distinct storage) —
        // the steady-state quorum-round case the digest fast path targets.
        let equal_copy: ChangeSet = a.iter().copied().collect();
        let nequal_copy: NaiveChangeSet = a.iter().copied().collect();
        g.bench_with_input(
            BenchmarkId::new("union_idempotent", extra),
            &extra,
            |b, _| b.iter(|| black_box(&a).union(black_box(&equal_copy))),
        );
        g.bench_with_input(
            BenchmarkId::new("naive_union_idempotent", extra),
            &extra,
            |b, _| b.iter(|| black_box(&na).union(black_box(&nequal_copy))),
        );
        // Superset ∪ subset: absorbing an older set (one subset scan).
        g.bench_with_input(BenchmarkId::new("union_superset", extra), &extra, |b, _| {
            b.iter(|| black_box(&b2).union(black_box(&a)))
        });
        g.bench_with_input(BenchmarkId::new("contains_all", extra), &extra, |b, _| {
            b.iter(|| black_box(&b2).contains_all(black_box(&a)))
        });
        g.bench_with_input(BenchmarkId::new("digest", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).digest())
        });
        g.bench_with_input(BenchmarkId::new("naive_digest", extra), &extra, |b, _| {
            b.iter(|| black_box(&na).digest())
        });
        g.bench_with_input(BenchmarkId::new("total_weight", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).total_weight(7))
        });
        g.bench_with_input(BenchmarkId::new("weights", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).weights(7))
        });
    }
    g.finish();

    // Merge at protocol scale: 10k-change sets, the size where the seed's
    // element-by-element merge dominated profiles.
    let mut g = c.benchmark_group("changeset_merge_10k");
    g.sample_size(10);
    let base = set_with(7, 10_000);
    let nbase = naive(&base);
    // Fresh merge: disjoint tails force real insertion work on both sides.
    let mut ahead = base.clone();
    for i in 0..64 {
        ahead.insert(Change::new(
            ServerId(3),
            50_000 + i,
            ServerId(4),
            Ratio::new(1, 100),
        ));
    }
    let nahead = naive(&ahead);
    // Distinct-storage equal copy: exercises the digest fast path rather
    // than pointer equality.
    let equal_copy: ChangeSet = base.iter().copied().collect();
    let nequal_copy = naive(&base);
    g.bench_with_input(BenchmarkId::new("merge_fresh", 10_000), &(), |b, _| {
        b.iter(|| {
            let mut m = base.clone();
            m.merge(black_box(&ahead));
            m
        })
    });
    g.bench_with_input(
        BenchmarkId::new("naive_merge_fresh", 10_000),
        &(),
        |b, _| {
            b.iter(|| {
                let mut m = nbase.clone();
                m.merge(black_box(&nahead));
                m
            })
        },
    );
    g.bench_with_input(BenchmarkId::new("merge_idempotent", 10_000), &(), |b, _| {
        b.iter(|| {
            let mut m = ahead.clone();
            m.merge(black_box(&base));
            m
        })
    });
    g.bench_with_input(
        BenchmarkId::new("naive_merge_idempotent", 10_000),
        &(),
        |b, _| {
            b.iter(|| {
                let mut m = nahead.clone();
                m.merge(black_box(&nbase));
                m
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("merge_equal_digest", 10_000),
        &(),
        |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                m.merge(black_box(&equal_copy));
                m
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("naive_merge_equal", 10_000),
        &(),
        |b, _| {
            b.iter(|| {
                let mut m = nbase.clone();
                m.merge(black_box(&nequal_copy));
                m
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_changeset);
criterion_main!(benches);
