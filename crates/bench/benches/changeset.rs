//! Criterion: change-set operations (the hot path of every message).

use std::hint::black_box;

use awr_types::{Change, ChangeSet, Ratio, ServerId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn set_with(n: usize, extra: usize) -> ChangeSet {
    let mut c = ChangeSet::uniform_initial(n, Ratio::ONE);
    for i in 0..extra {
        let s = ServerId((i % n) as u32);
        let t = ServerId(((i + 1) % n) as u32);
        c.insert(Change::new(s, 2 + i as u64, s, Ratio::new(-1, 100)));
        c.insert(Change::new(s, 2 + i as u64, t, Ratio::new(1, 100)));
    }
    c
}

fn bench_changeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("changeset");
    for &extra in &[10usize, 100, 1000] {
        let a = set_with(7, extra);
        let mut b2 = a.clone();
        b2.insert(Change::new(ServerId(0), 9999, ServerId(1), Ratio::new(1, 10)));
        g.bench_with_input(BenchmarkId::new("server_weight", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).server_weight(ServerId(0)))
        });
        g.bench_with_input(BenchmarkId::new("union", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).union(black_box(&b2)))
        });
        g.bench_with_input(BenchmarkId::new("contains_all", extra), &extra, |b, _| {
            b.iter(|| black_box(&b2).contains_all(black_box(&a)))
        });
        g.bench_with_input(BenchmarkId::new("digest", extra), &extra, |b, _| {
            b.iter(|| black_box(&a).digest())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_changeset);
criterion_main!(benches);
