//! Criterion: quorum predicate evaluation and smallest-quorum computation.

use std::collections::BTreeSet;
use std::hint::black_box;

use awr_quorum::{MajorityQuorumSystem, QuorumSystem, WeightedMajorityQuorumSystem};
use awr_types::{Ratio, ServerId, WeightMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_quorum(c: &mut Criterion) {
    let mut g = c.benchmark_group("is_quorum");
    for &n in &[7usize, 25, 101] {
        let weights = WeightMap::from_fn(n, |s| Ratio::new(10 + s.index() as i128 % 7, 10));
        let wmqs = WeightedMajorityQuorumSystem::new(weights);
        let mqs = MajorityQuorumSystem::new(n);
        let set: BTreeSet<ServerId> = ServerId::all(n).step_by(2).collect();
        g.bench_with_input(BenchmarkId::new("weighted", n), &n, |b, _| {
            b.iter(|| wmqs.is_quorum(black_box(&set)))
        });
        g.bench_with_input(BenchmarkId::new("majority", n), &n, |b, _| {
            b.iter(|| mqs.is_quorum(black_box(&set)))
        });
        g.bench_with_input(BenchmarkId::new("smallest_quorum", n), &n, |b, _| {
            b.iter(|| black_box(&wmqs).smallest_quorum())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_quorum);
criterion_main!(benches);
