//! Criterion: simulated dynamic-weighted storage operations vs the static
//! ABD baseline (events processed per read/write).

use std::hint::black_box;

use awr_core::RpConfig;
use awr_sim::UniformLatency;
use awr_storage::{DynOptions, StorageHarness};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_storage");
    g.sample_size(20);
    for &(n, f) in &[(5usize, 1usize), (7, 2)] {
        g.bench_with_input(
            BenchmarkId::new("write+read", format!("n{n}f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let mut h: StorageHarness<u64> = StorageHarness::build(
                        RpConfig::uniform(n, f),
                        1,
                        3,
                        UniformLatency::new(1_000, 40_000),
                        DynOptions::default(),
                    );
                    h.write(0, 42).unwrap();
                    black_box(h.read(0).unwrap())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
