//! Criterion: linearizability checker throughput on sequential and
//! concurrent histories, plus the per-object partitioned checker on keyed
//! histories.

use std::hint::black_box;

use awr_sim::Time;
use awr_storage::{check_linearizable, check_linearizable_keyed, HistOp, History, OpKind};
use awr_types::ObjectId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sequential_history(ops: usize) -> History<u64> {
    let mut h = History::new();
    for i in 0..ops as u64 {
        h.record(HistOp {
            client: 0,
            obj: ObjectId::DEFAULT,
            kind: OpKind::Write(i),
            invoke: Time(i * 20),
            response: Time(i * 20 + 5),
        });
        h.record(HistOp {
            client: 1,
            obj: ObjectId::DEFAULT,
            kind: OpKind::Read(Some(i)),
            invoke: Time(i * 20 + 10),
            response: Time(i * 20 + 15),
        });
    }
    h
}

fn concurrent_history(width: usize) -> History<u64> {
    // `width` writers all overlapping, then a read of one of them.
    let mut h = History::new();
    for i in 0..width as u64 {
        h.record(HistOp {
            client: i as usize,
            obj: ObjectId::DEFAULT,
            kind: OpKind::Write(i),
            invoke: Time(0),
            response: Time(1000),
        });
    }
    h.record(HistOp {
        client: width,
        obj: ObjectId::DEFAULT,
        kind: OpKind::Read(Some(0)),
        invoke: Time(2000),
        response: Time(2100),
    });
    h
}

/// A globally-entangled keyed history: `objects` writer/reader pairs, every
/// operation overlapping every other in real time, but each pair on its own
/// object. The whole-history view is one impossible 2·`objects`-op window;
/// the per-object partition is `objects` trivial 2-op windows.
fn keyed_history(objects: usize) -> History<u64> {
    let mut h = History::new();
    for o in 0..objects as u64 {
        h.record(HistOp {
            client: o as usize,
            obj: ObjectId(o),
            kind: OpKind::Write(o),
            invoke: Time(0),
            response: Time(1000),
        });
        h.record(HistOp {
            client: objects + o as usize,
            obj: ObjectId(o),
            kind: OpKind::Read(Some(o)),
            invoke: Time(500),
            response: Time(1500),
        });
    }
    h
}

fn bench_lin(c: &mut Criterion) {
    let mut g = c.benchmark_group("linearizability");
    for &n in &[100usize, 1000] {
        let h = sequential_history(n);
        g.bench_with_input(BenchmarkId::new("sequential", n * 2), &n, |b, _| {
            b.iter(|| check_linearizable(black_box(&h)).unwrap())
        });
    }
    for &w in &[6usize, 10, 14] {
        let h = concurrent_history(w);
        g.bench_with_input(BenchmarkId::new("concurrent_window", w), &w, |b, _| {
            b.iter(|| check_linearizable(black_box(&h)).unwrap())
        });
    }
    // The whole-history checker would need a 2·k-op window here (and reject
    // it as one register); the keyed checker decomposes it per object.
    for &k in &[16usize, 256, 2048] {
        let h = keyed_history(k);
        g.bench_with_input(BenchmarkId::new("keyed_partitioned", 2 * k), &k, |b, _| {
            b.iter(|| check_linearizable_keyed(black_box(&h)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lin);
criterion_main!(benches);
