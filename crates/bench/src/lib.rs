//! # awr-bench — experiment harnesses
//!
//! One binary per experiment in DESIGN.md §4 (`fig1`, `e3_flexibility`, …)
//! plus criterion micro-benchmarks. This library holds the shared
//! table-printing and statistics helpers.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive_changeset;

/// Prints a fixed-width table: a header row, then rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(" {:<width$} |", c, width = widths[i]));
        }
        out
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", line(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Simple summary statistics over a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Stats {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Stats {
    /// Computes statistics; returns zeros for an empty sample.
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Stats {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            p50: pct(0.5),
            p99: pct(0.99),
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = Stats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.p50 >= 2.0 && s.p50 <= 3.0);
    }

    #[test]
    fn stats_empty() {
        assert_eq!(Stats::of(&[]).count, 0);
    }

    #[test]
    fn table_prints() {
        print_table("demo", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
