//! The seed's naive change-set representation, preserved as a benchmark
//! baseline.
//!
//! [`NaiveChangeSet`] reproduces the pre-optimization semantics exactly:
//! a bare `BTreeSet<Change>` whose `server_weight`/`total_weight` are
//! O(|C|) scans, whose `merge` inserts element-by-element, whose `clone`
//! deep-copies, and whose `digest` re-hashes the whole set. The
//! `changeset` criterion bench and the `bench_changeset` runner measure it
//! head-to-head against [`awr_types::ChangeSet`]'s incremental accounting
//! so the speedup is tracked release over release.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use awr_types::{Change, Ratio, ServerId};

/// A grow-only change set with from-scratch (non-cached) accounting.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct NaiveChangeSet {
    changes: BTreeSet<Change>,
}

impl NaiveChangeSet {
    /// Creates an empty set.
    pub fn new() -> NaiveChangeSet {
        NaiveChangeSet::default()
    }

    /// Inserts a change; returns `true` if it was new.
    pub fn insert(&mut self, c: Change) -> bool {
        self.changes.insert(c)
    }

    /// Unions another set into this one, element by element.
    pub fn merge(&mut self, other: &NaiveChangeSet) {
        for c in &other.changes {
            self.changes.insert(*c);
        }
    }

    /// Returns the union of the two sets (deep copy + element inserts).
    pub fn union(&self, other: &NaiveChangeSet) -> NaiveChangeSet {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Returns `true` if `self` contains every change in `other`.
    pub fn contains_all(&self, other: &NaiveChangeSet) -> bool {
        other.changes.is_subset(&self.changes)
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Returns `true` if no changes are present.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// O(|C|) scan: the weight of server `s`.
    pub fn server_weight(&self, s: ServerId) -> Ratio {
        self.changes
            .iter()
            .filter(|c| c.target == s)
            .map(|c| c.delta)
            .sum()
    }

    /// O(n·|C|) scan: total weight of an `n`-server system.
    pub fn total_weight(&self, n: usize) -> Ratio {
        ServerId::all(n).map(|s| self.server_weight(s)).sum()
    }

    /// O(|C|) re-hash of the full content.
    pub fn digest(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for c in &self.changes {
            c.hash(&mut h);
        }
        self.changes.len().hash(&mut h);
        h.finish()
    }
}

impl FromIterator<Change> for NaiveChangeSet {
    fn from_iter<I: IntoIterator<Item = Change>>(iter: I) -> NaiveChangeSet {
        NaiveChangeSet {
            changes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awr_types::ChangeSet;

    #[test]
    fn agrees_with_cached_implementation() {
        let mut cached = ChangeSet::uniform_initial(5, Ratio::ONE);
        cached.insert(Change::new(ServerId(0), 2, ServerId(1), Ratio::dec("0.25")));
        let naive: NaiveChangeSet = cached.iter().copied().collect();
        for i in 0..5 {
            assert_eq!(
                naive.server_weight(ServerId(i)),
                cached.server_weight(ServerId(i))
            );
        }
        assert_eq!(naive.total_weight(5), cached.total_weight(5));
        assert_eq!(naive.len(), cached.len());
    }
}
