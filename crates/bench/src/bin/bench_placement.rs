//! Placement benchmark: mean operation latency under `geo_network` +
//! cross traffic, adaptive placement policies versus the `Static`
//! baseline.
//!
//! Two geo-replicated scenarios (the paper's motivating WHEAT/AWARE
//! deployment shape), each with background flows contending for the ack
//! links:
//!
//! * **colocated** — five servers, one per region, client beside the
//!   Virginia server; bursty/reassignment-wave cross traffic congests the
//!   Ireland, São Paulo, and Tokyo corridors. A static uniform map needs
//!   three of five servers per phase (two remote acks through the
//!   contention); an adaptive policy concentrates weight on Virginia so a
//!   single remote ack — from whichever corridor is clean — completes the
//!   phase. Here `latency-greedy` and `utilization-aware` converge on the
//!   same map and both beat `static`.
//! * **remote-client** — no server in the client's region; the two
//!   nearest (Ireland) servers sit behind links that heavy bursts keep
//!   ~90 % occupied. `latency-greedy` trusts pure RTT, piles weight onto
//!   Ireland, and *backfires* — its quorums wait out the backlog.
//!   `utilization-aware` sees the queueing in the per-link delay matrix,
//!   clamps Ireland to the floor, and forms clean São-Paulo+Tokyo quorums
//!   instead. Only the utilization signal separates the two policies.
//!
//! A third scenario exercises *re-deciding mid-run*: the congestion
//! **regime shifts** partway through (the saturated corridors swap), and a
//! driver that decided once — correctly, at the time — is stranded on a
//! stale map while a periodically-ticking driver with windowed
//! observations ([`awr_sim::Metrics::since`]) re-decides and recovers.
//! The JSON records the weights before and after the shift for each arm.
//!
//! The JSON output records all scenarios; the `--smoke` gate (CI)
//! asserts that in each static-vs-adaptive scenario the best adaptive
//! policy beats `static` on mean op latency and actually reassigned
//! weight, and that in the regime-shift scenario the re-deciding arm
//! beats decide-once on post-shift latency and actually moved weight at
//! the second decision.
//!
//! Run with: `cargo run --release --bin bench_placement [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_core::RpConfig;
use awr_quorum::placement::{LatencyGreedy, PlacementPolicy, Static, UtilizationAware};
use awr_sim::{
    geo_network, ActorId, BurstyOnOff, ConstantBitrate, CrossTraffic, Flow, ReassignmentBurst,
    RegimeShift, Region, Time, MILLI, SECOND,
};
use awr_storage::{DynClient, DynOptions, PlacementDriver, StorageHarness};

const N: usize = 5;
const F: usize = 1;
const SEED: u64 = 0xA17A;
const JITTER: f64 = 0.02;
/// Virtual time at which the regime-shift scenario swaps its congested
/// corridors (generously after phase 1's measurement window; the harness
/// fast-forwards dead time up to it).
const SHIFT: Time = Time(60 * SECOND);

struct Scenario {
    name: &'static str,
    placement: Vec<Region>,
    flows: fn() -> Vec<Flow>,
}

struct Row {
    scenario: &'static str,
    /// Region of each *server* (the client's region is in the topology
    /// header).
    placement: Vec<&'static str>,
    policy: &'static str,
    mean_latency_ms: f64,
    max_latency_ms: f64,
    transfers_issued: usize,
    restarts: u64,
    weights_after: Vec<String>,
    cross_traffic_bytes: u64,
}

/// Colocated: servers in the five regions, client beside Virginia,
/// periodic congestion on the Ireland / São Paulo / Tokyo ack links.
fn colocated_flows() -> Vec<Flow> {
    let client = ActorId(N);
    const MB: u64 = 1_000_000;
    vec![
        // Ireland → client (250 MB/s link): 50 MB elephant bursts, 200 ms
        // of backlog each, every 400 ms.
        Flow::new(
            ActorId(1),
            client,
            BurstyOnOff::new(40 * MILLI, 360 * MILLI, 1_250 * MB),
        ),
        // São Paulo → client (150 MB/s link): a competing tenant's
        // reassignment wave, 20 MB at once every 450 ms.
        Flow::new(
            ActorId(2),
            client,
            ReassignmentBurst::new(450 * MILLI, 20 * MB, 100 * MILLI),
        ),
        // Tokyo → client (120 MB/s link): the same, heavier and slower.
        Flow::new(
            ActorId(3),
            client,
            ReassignmentBurst::new(600 * MILLI, 24 * MB, 250 * MILLI),
        ),
        // Background trickle on the São Paulo corridor (utilization
        // signal, negligible queueing on its own).
        Flow::new(ActorId(2), client, ConstantBitrate::new(30 * MB)),
    ]
}

/// Remote-client: both Ireland servers' ack links carry ~95 MB bursts
/// every 400 ms — ~380 ms of backlog per period on a 250 MB/s link, with
/// the two flows phase-shifted so the corridor is clean only ~5 % of the
/// time; a lighter wave grazes Sydney. A policy that keeps quorums
/// dependent on Ireland pays that backlog on almost every phase.
fn remote_client_flows() -> Vec<Flow> {
    let client = ActorId(N);
    const MB: u64 = 1_000_000;
    vec![
        Flow::new(
            ActorId(0),
            client,
            BurstyOnOff::new(45 * MILLI, 355 * MILLI, 2_111 * MB),
        ),
        Flow::new(
            ActorId(1),
            client,
            ReassignmentBurst::new(400 * MILLI, 95 * MB, 200 * MILLI),
        ),
        // A lighter competing wave on the Sydney ack link (100 MB/s):
        // static's count-three fallback quorum pays it, the clean
        // São Paulo + Tokyo pair does not.
        Flow::new(
            ActorId(4),
            client,
            ReassignmentBurst::new(500 * MILLI, 12 * MB, 50 * MILLI),
        ),
    ]
}

/// Regime shift, on the remote-client placement (client in Virginia, no
/// server there). Phase 1 (t < SHIFT): the two Ireland ack links carry the
/// heavy bursts — the right call is to weight São Paulo / Tokyo / Sydney.
/// Phase 2 (t ≥ SHIFT): Ireland clears and all three of those corridors
/// saturate instead — now only an Ireland-heavy map forms clean quorums.
fn regime_shift_flows() -> Vec<Flow> {
    let client = ActorId(N);
    const MB: u64 = 1_000_000;
    let silence = || ConstantBitrate::new(0);
    vec![
        // Phase 1: Ireland pair congested (as in remote-client), then clear.
        Flow::new(
            ActorId(0),
            client,
            RegimeShift::new(
                SHIFT,
                BurstyOnOff::new(45 * MILLI, 355 * MILLI, 2_111 * MB),
                silence(),
            ),
        ),
        Flow::new(
            ActorId(1),
            client,
            RegimeShift::new(
                SHIFT,
                ReassignmentBurst::new(400 * MILLI, 95 * MB, 200 * MILLI),
                silence(),
            ),
        ),
        // Phase 2: São Paulo (150 MB/s), Tokyo (120 MB/s), Sydney
        // (100 MB/s) ack links saturate ~92 % each, phase-staggered.
        Flow::new(
            ActorId(2),
            client,
            RegimeShift::new(
                SHIFT,
                silence(),
                ReassignmentBurst::new(400 * MILLI, 55 * MB, 100 * MILLI),
            ),
        ),
        Flow::new(
            ActorId(3),
            client,
            RegimeShift::new(
                SHIFT,
                silence(),
                ReassignmentBurst::new(400 * MILLI, 44 * MB, 200 * MILLI),
            ),
        ),
        Flow::new(
            ActorId(4),
            client,
            RegimeShift::new(
                SHIFT,
                silence(),
                ReassignmentBurst::new(400 * MILLI, 37 * MB, 300 * MILLI),
            ),
        ),
    ]
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "colocated",
            placement: {
                let mut p = Region::ALL.to_vec();
                p.push(Region::Virginia); // the client
                p
            },
            flows: colocated_flows,
        },
        Scenario {
            name: "remote-client",
            placement: vec![
                Region::Ireland,
                Region::Ireland,
                Region::SaoPaulo,
                Region::Tokyo,
                Region::Sydney,
                Region::Virginia, // the client
            ],
            flows: remote_client_flows,
        },
    ]
}

fn run(sc: &Scenario, policy: Box<dyn PlacementPolicy>, warm: usize, ops: usize) -> Row {
    let cfg = RpConfig::uniform(N, F);
    let net = CrossTraffic::new(geo_network(&sc.placement, JITTER), (sc.flows)());
    let stats = net.stats();
    let mut h: StorageHarness<u64> =
        StorageHarness::build(cfg, 1, SEED, net, DynOptions::default());
    let name = policy.name();
    let mut driver = PlacementDriver::new(policy, vec![h.client_actor(0)]);

    // Observe: warmup ops populate the per-link delay matrices.
    for v in 0..warm as u64 {
        if v % 2 == 0 {
            h.write(0, v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    // Decide + reassign, then let the transfers complete.
    let transfers_issued = driver.tick(&mut h);
    h.settle();
    // Two unmeasured sync ops: the client reconciles its change set (the
    // post-reassignment restart) outside the measurement window, so every
    // policy is measured from a converged client.
    h.write(0, 1_000_000).unwrap();
    h.read(0).unwrap();

    let measured_from = warm + 2;
    for v in 0..ops as u64 {
        if v % 2 == 0 {
            h.write(0, 2_000_000 + v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }

    let client = h.client_actor(0);
    let completed = &h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed;
    assert_eq!(completed.len(), measured_from + ops);
    let lat_ms: Vec<f64> = completed[measured_from..]
        .iter()
        .map(|o| (o.response - o.invoke) as f64 / 1e6)
        .collect();
    let weights = driver.current_weights(&h);
    Row {
        scenario: sc.name,
        placement: sc.placement[..N].iter().map(Region::name).collect(),
        policy: name,
        mean_latency_ms: lat_ms.iter().sum::<f64>() / lat_ms.len() as f64,
        max_latency_ms: lat_ms.iter().cloned().fold(0.0, f64::max),
        transfers_issued,
        restarts: h.total_restarts(),
        weights_after: weights.iter().map(|(_, w)| w.to_string()).collect(),
        cross_traffic_bytes: stats.total_injected(),
    }
}

/// One arm of the regime-shift scenario.
struct RegimeRow {
    arm: &'static str,
    phase1_ms: f64,
    phase2_ms: f64,
    /// Transfers issued at the first / second decision point.
    transfers: (usize, usize),
    weights_after_first: Vec<String>,
    weights_final: Vec<String>,
}

/// Runs the regime-shift scenario. `decisions`: 0 = static (never decide),
/// 1 = decide once before the shift, 2 = also re-decide after it.
fn run_regime(decisions: usize, warm: usize, ops: usize) -> RegimeRow {
    let placement = vec![
        Region::Ireland,
        Region::Ireland,
        Region::SaoPaulo,
        Region::Tokyo,
        Region::Sydney,
        Region::Virginia, // the client
    ];
    let cfg = RpConfig::uniform(N, F);
    let net = CrossTraffic::new(geo_network(&placement, JITTER), regime_shift_flows());
    let mut h: StorageHarness<u64> =
        StorageHarness::build(cfg, 1, SEED, net, DynOptions::default());
    let mut driver = PlacementDriver::new(UtilizationAware::default(), vec![h.client_actor(0)]);
    // Windowed observations: each decision sees only its own regime.
    driver.windowed = true;

    let client = h.client_actor(0);
    let mean_of = |h: &StorageHarness<u64>, from: usize| -> f64 {
        let completed = &h
            .world
            .actor::<DynClient<u64>>(client)
            .expect("client")
            .driver
            .completed;
        let lat: Vec<f64> = completed[from..]
            .iter()
            .map(|o| (o.response - o.invoke) as f64 / 1e6)
            .collect();
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let completed_len = |h: &StorageHarness<u64>| {
        h.world
            .actor::<DynClient<u64>>(client)
            .expect("client")
            .driver
            .completed
            .len()
    };

    // Phase 1: observe, (maybe) decide, sync, measure.
    for v in 0..warm as u64 {
        if v % 2 == 0 {
            h.write(0, v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    let t1 = if decisions >= 1 {
        driver.tick(&mut h)
    } else {
        0
    };
    h.settle();
    h.write(0, 1_000_000).unwrap();
    h.read(0).unwrap();
    let m1 = completed_len(&h);
    for v in 0..ops as u64 {
        if v % 2 == 0 {
            h.write(0, 2_000_000 + v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    let phase1_ms = mean_of(&h, m1);
    let weights_after_first = driver
        .current_weights(&h)
        .iter()
        .map(|(_, w)| w.to_string())
        .collect();

    // Cross the shift (dead virtual time is free). The re-deciding arm
    // keeps ticking *through* it: the first post-shift tick closes the
    // stale window (its mixed evidence rarely moves much), and the next
    // tick decides on a clean window of purely new-regime observations.
    // The decide-once arm runs the identical op schedule without ticks.
    let now = h.world.now();
    assert!(now < SHIFT, "phase 1 overran the regime shift ({now})");
    h.world.run_for(SHIFT.nanos() - now.nanos());
    let mut t2 = 0;
    let half = warm.div_ceil(2);
    for v in 0..warm as u64 {
        if v as usize == half && decisions >= 2 {
            t2 += driver.tick(&mut h);
            h.settle();
        }
        if v % 2 == 0 {
            h.write(0, 3_000_000 + v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    if decisions >= 2 {
        t2 += driver.tick(&mut h);
    }
    h.settle();
    h.write(0, 4_000_000).unwrap();
    h.read(0).unwrap();
    let m2 = completed_len(&h);
    for v in 0..ops as u64 {
        if v % 2 == 0 {
            h.write(0, 5_000_000 + v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }
    RegimeRow {
        arm: match decisions {
            0 => "static",
            1 => "decide-once",
            _ => "re-decide",
        },
        phase1_ms,
        phase2_ms: mean_of(&h, m2),
        transfers: (t1, t2),
        weights_after_first,
        weights_final: driver
            .current_weights(&h)
            .iter()
            .map(|(_, w)| w.to_string())
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_placement.json".to_string());
    let (warm, ops) = if smoke { (6, 12) } else { (10, 40) };

    let mut rows = Vec::new();
    for sc in scenarios() {
        rows.push(run(&sc, Box::new(Static), warm, ops));
        rows.push(run(&sc, Box::new(LatencyGreedy::default()), warm, ops));
        rows.push(run(&sc, Box::new(UtilizationAware::default()), warm, ops));
    }
    let regime: Vec<RegimeRow> = (0..3).map(|d| run_regime(d, warm, ops)).collect();

    println!(
        "{:<14} {:<18} {:>14} {:>13} {:>10} {:>9}  weights after",
        "scenario", "policy", "mean op (ms)", "max op (ms)", "transfers", "restarts"
    );
    for r in &rows {
        println!(
            "{:<14} {:<18} {:>14.2} {:>13.2} {:>10} {:>9}  [{}]",
            r.scenario,
            r.policy,
            r.mean_latency_ms,
            r.max_latency_ms,
            r.transfers_issued,
            r.restarts,
            r.weights_after.join(", ")
        );
    }

    println!("\nregime-shift scenario (corridors swap at t = {SHIFT}):");
    println!(
        "{:<14} {:>14} {:>14} {:>11}  weights after shift",
        "arm", "phase1 (ms)", "phase2 (ms)", "transfers"
    );
    for r in &regime {
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>5}+{:<5}  [{}]",
            r.arm,
            r.phase1_ms,
            r.phase2_ms,
            r.transfers.0,
            r.transfers.1,
            r.weights_final.join(", ")
        );
    }

    let mut json = String::from(
        "{\n  \"bench\": \"placement\",\n  \"unit\": \"mean_op_latency_ms\",\n  \"topology\": \
         {\"kind\": \"geo_network\", \"client_region\": \"virginia\", \"cross_traffic\": true},\n  \
         \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"placement\": [{}], \"policy\": \"{}\", \
             \"mean_op_latency_ms\": {:.3}, \"max_op_latency_ms\": {:.3}, \
             \"transfers_issued\": {}, \"restarts\": {}, \"cross_traffic_bytes\": {}, \
             \"weights_after\": [{}]}}{}\n",
            r.scenario,
            r.placement
                .iter()
                .map(|p| format!("\"{p}\""))
                .collect::<Vec<_>>()
                .join(", "),
            r.policy,
            r.mean_latency_ms,
            r.max_latency_ms,
            r.transfers_issued,
            r.restarts,
            r.cross_traffic_bytes,
            r.weights_after
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"regime_shift\": {\n    \"shift_at_ns\": ");
    json.push_str(&format!("{},\n    \"results\": [\n", SHIFT.nanos()));
    for (i, r) in regime.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"arm\": \"{}\", \"phase1_mean_ms\": {:.3}, \"phase2_mean_ms\": {:.3}, \
             \"transfers_first\": {}, \"transfers_second\": {}, \
             \"weights_after_first_decision\": [{}], \"weights_after_shift\": [{}]}}{}\n",
            r.arm,
            r.phase1_ms,
            r.phase2_ms,
            r.transfers.0,
            r.transfers.1,
            r.weights_after_first
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", "),
            r.weights_final
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < regime.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");

    // The CI gate, per scenario: the best adaptive policy must beat
    // Static on mean op latency and must actually have reassigned weight;
    // Static must not move anything.
    let mut ok = true;
    for chunk in rows.chunks(3) {
        let stat = &chunk[0];
        let best = chunk[1..]
            .iter()
            .min_by(|a, b| a.mean_latency_ms.total_cmp(&b.mean_latency_ms))
            .unwrap();
        if best.mean_latency_ms >= stat.mean_latency_ms {
            eprintln!(
                "FAIL[{}]: best adaptive ({}) {:.2} ms/op >= static {:.2} ms/op",
                stat.scenario, best.policy, best.mean_latency_ms, stat.mean_latency_ms
            );
            ok = false;
        }
        if best.transfers_issued == 0 {
            eprintln!("FAIL[{}]: winning policy issued no transfer", stat.scenario);
            ok = false;
        }
        if stat.transfers_issued != 0 {
            eprintln!("FAIL[{}]: static issued transfers", stat.scenario);
            ok = false;
        }
        // Full runs additionally require a real margin, not a rounding win.
        if !smoke {
            let speedup = stat.mean_latency_ms / best.mean_latency_ms;
            if speedup < 1.1 {
                eprintln!(
                    "FAIL[{}]: adaptive speedup only {speedup:.3}x (< 1.1x)",
                    stat.scenario
                );
                ok = false;
            }
            println!(
                "{}: adaptive speedup {speedup:.2}x ({} {:.2} ms vs static {:.2} ms)",
                stat.scenario, best.policy, best.mean_latency_ms, stat.mean_latency_ms
            );
        }
    }
    // Regime-shift gates: the re-deciding arm must beat decide-once on
    // post-shift latency, must actually have moved weight at the second
    // decision, and the decide-once arm must not have (its second decision
    // point never runs).
    let once = regime.iter().find(|r| r.arm == "decide-once").unwrap();
    let re = regime.iter().find(|r| r.arm == "re-decide").unwrap();
    if re.phase2_ms >= once.phase2_ms {
        eprintln!(
            "FAIL[regime-shift]: re-decide {:.2} ms >= decide-once {:.2} ms after the shift",
            re.phase2_ms, once.phase2_ms
        );
        ok = false;
    }
    if re.transfers.1 == 0 {
        eprintln!("FAIL[regime-shift]: re-decide issued no transfer at the second decision");
        ok = false;
    }
    if re.weights_final == re.weights_after_first {
        eprintln!("FAIL[regime-shift]: the second decision did not change the map");
        ok = false;
    }
    if once.transfers.1 != 0 {
        eprintln!("FAIL[regime-shift]: decide-once ticked twice");
        ok = false;
    }
    if !smoke {
        let speedup = once.phase2_ms / re.phase2_ms;
        if speedup < 1.1 {
            eprintln!("FAIL[regime-shift]: re-decide speedup only {speedup:.3}x (< 1.1x)");
            ok = false;
        }
        println!(
            "regime-shift: re-decide speedup {speedup:.2}x after the shift ({:.2} ms vs {:.2} ms)",
            re.phase2_ms, once.phase2_ms
        );
    }
    if !ok {
        std::process::exit(1);
    }
}
