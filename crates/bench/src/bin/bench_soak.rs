//! Durability soak: thousands of reassignments under periodic crashes,
//! with journal memory and recovery time gated *flat*.
//!
//! The durable-shard claim is that a server's footprint is governed by the
//! checkpoint cadence, not by history length: journal compaction truncates
//! the in-memory `C` journal, the WAL is reset by each snapshot, and a
//! rebooted server replays a *bounded* suffix before rejoining through the
//! sync round and count-based refresh. If any of those links breaks —
//! compaction stops firing, snapshots stop resetting the WAL, recovery
//! replays ever more history — this soak sees a monotone drift and fails.
//!
//! The run is epochs of weight ping-pong (each transfer is one paper
//! reassignment: Algorithm 4 through the full wire protocol) racing
//! register traffic, with one server crashed for the whole epoch and
//! rebooted from its snapshot + WAL at the end. Gates:
//!
//! - journal length and WAL length stay under an absolute cadence-derived
//!   bound on every sample, and do not drift between the first and second
//!   half of the run;
//! - recovery (reboot → rejoined, settled world) takes flat virtual time;
//! - the full history is linearizable and the transfer audit is clean —
//!   zero violations over the whole campaign;
//! - every scheduled crash actually rebooted (restart count matches).
//!
//! The `--smoke` gate (CI) runs a short campaign; the full run covers
//! ≥ 2000 reassignments and writes BENCH_soak.json.
//!
//! Run with: `cargo run --release --bin bench_soak [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_core::{audit_transfers, RpConfig};
use awr_sim::UniformLatency;
use awr_storage::{
    check_linearizable, CheckpointCadence, DynOptions, DynServer, RetryPolicy, StorageHarness,
};
use awr_types::{Ratio, ServerId};

const N: usize = 7;
const F: usize = 2;
const SEED: u64 = 0x50AC;

const CADENCE: CheckpointCadence = CheckpointCadence {
    every: 64,
    min_retain: 16,
};

struct Row {
    epoch: usize,
    /// Completed reassignments so far (cumulative).
    reassignments: usize,
    /// Total |C| on the rebooted server (grows forever).
    changes: usize,
    /// Largest in-memory journal across all servers (must stay bounded).
    max_journal: usize,
    /// Largest WAL across all servers (must stay bounded by snapshots).
    max_wal: usize,
    /// Virtual ns from reboot to fully settled (rejoin + refresh done).
    recovery_ns: u64,
}

fn sample(h: &StorageHarness<u64>, cfg: &RpConfig) -> (usize, usize, usize) {
    let mut max_journal = 0;
    let mut max_wal = 0;
    let mut changes = 0;
    for sv in cfg.servers() {
        let srv = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(sv))
            .expect("server");
        max_journal = max_journal.max(srv.changes().journal_len());
        changes = changes.max(srv.changes().len());
        if let Some(st) = h.storage_handle(sv) {
            max_wal = max_wal.max(st.wal_len());
        }
    }
    (changes, max_journal, max_wal)
}

fn run(epochs: usize, transfers_per_epoch: usize) -> (Vec<Row>, u64) {
    let cfg = RpConfig::uniform(N, F);
    let options = DynOptions {
        checkpoint: Some(CADENCE),
        retry: Some(RetryPolicy::default()),
        ..DynOptions::default()
    };
    let mut h: StorageHarness<u64> = StorageHarness::build_durable(
        cfg.clone(),
        2,
        SEED,
        UniformLatency::new(1_000, 20_000),
        options,
    );

    let mut rows = Vec::with_capacity(epochs);
    let mut reassignments = 0usize;
    let mut next_val = 1u64;
    for epoch in 0..epochs {
        // One server sits out the whole epoch, dead; everyone else keeps
        // reassigning weight and serving reads/writes without it.
        let victim = ServerId((epoch % N) as u32);
        h.crash_server(victim);
        for t in 0..transfers_per_epoch {
            // Ping-pong between rotating live pairs: weights return to
            // uniform every two transfers, so the RP floor is never at
            // risk no matter how long the soak runs.
            let a = ServerId(((epoch + 1 + 2 * (t % 3)) % N) as u32);
            let b = ServerId(((epoch + 2 + 2 * (t % 3)) % N) as u32);
            let (from, to) = if t % 2 == 0 { (a, b) } else { (b, a) };
            h.transfer_and_wait(from, to, Ratio::dec("0.05"))
                .expect("soak transfer");
            reassignments += 1;
            if t % 4 == 0 {
                h.write(epoch % 2, next_val).expect("soak write");
                next_val += 1;
            } else if t % 4 == 2 {
                h.read((epoch + 1) % 2).expect("soak read");
            }
        }
        // Reboot from snapshot + WAL; `settle` drains the sync round and
        // the count-based refresh, so the delta is the full recovery cost.
        let t0 = h.world.now();
        h.restart_server(victim);
        h.settle();
        let recovery_ns = h.world.now() - t0;
        // Epoch gate: a full ping-pong cycle must land the shard back on
        // the initial weighted view, on *every* server's change set. The
        // check reads the `ChangeSet` weight caches — O(n) per epoch —
        // instead of re-deriving weights by folding the ever-growing |C|.
        let expect_total = cfg.initial_total();
        for sv in cfg.servers() {
            let srv = h
                .world
                .actor::<DynServer<u64>>(h.server_actor(sv))
                .expect("server");
            let ch = srv.changes();
            assert_eq!(
                ch.total_weight(N),
                expect_total,
                "epoch {epoch}: total weight diverged in {sv}'s view"
            );
            for peer in cfg.servers() {
                assert_eq!(
                    Some(ch.server_weight(peer)),
                    cfg.initial_weights.get(peer),
                    "epoch {epoch}: {sv}'s view of {peer} left the uniform point"
                );
            }
        }
        let (changes, max_journal, max_wal) = sample(&h, &cfg);
        rows.push(Row {
            epoch,
            reassignments,
            changes,
            max_journal,
            max_wal,
            recovery_ns,
        });
    }

    check_linearizable(&h.history()).expect("soak history must stay linearizable");
    let report = audit_transfers(h.config(), &h.all_completed_transfers());
    assert!(
        report.is_clean(),
        "transfer audit violations: {:?}",
        report.violations
    );
    let restarts = h.world.metrics().restarts;
    assert_eq!(
        restarts, epochs as u64,
        "every crash must reboot exactly once"
    );
    (rows, restarts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_soak.json".to_string());
    let (epochs, per_epoch) = if smoke { (6, 12) } else { (50, 42) };

    let (rows, restarts) = run(epochs, per_epoch);
    let total = rows.last().map(|r| r.reassignments).unwrap_or(0);
    if !smoke {
        assert!(total >= 2000, "full soak must cover >= 2000 reassignments");
    }

    println!(
        "{:>6} {:>14} {:>10} {:>12} {:>8} {:>14}",
        "epoch", "reassignments", "|C|", "max journal", "max WAL", "recovery (ns)"
    );
    for r in &rows {
        println!(
            "{:>6} {:>14} {:>10} {:>12} {:>8} {:>14}",
            r.epoch, r.reassignments, r.changes, r.max_journal, r.max_wal, r.recovery_ns
        );
    }

    let mut json = String::from("{\n  \"bench\": \"soak\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"n\": {N}, \"f\": {F}, \"checkpoint_every\": {}, \"min_retain\": {}}},\n",
        CADENCE.every, CADENCE.min_retain
    ));
    json.push_str(&format!(
        "  \"reassignments\": {total},\n  \"restarts\": {restarts},\n  \"violations\": 0,\n  \
         \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"epoch\": {}, \"reassignments\": {}, \"changes\": {}, \"max_journal\": {}, \
             \"max_wal\": {}, \"recovery_ns\": {}}}{}\n",
            r.epoch,
            r.reassignments,
            r.changes,
            r.max_journal,
            r.max_wal,
            r.recovery_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");

    // The gates. Absolute bound first: memory is cadence-shaped, never
    // history-shaped. A compacted journal holds at most one full cadence
    // interval plus the retained suffix (and the retention heuristic may
    // keep a straggler's delta on top, bounded by the same interval).
    let journal_bound = 2 * CADENCE.every + CADENCE.min_retain;
    let mut failed: Vec<String> = Vec::new();
    for r in &rows {
        if r.max_journal > journal_bound {
            eprintln!(
                "FAIL: epoch {}: journal {} exceeds bound {journal_bound}",
                r.epoch, r.max_journal
            );
            failed.push(format!("journal bound (epoch {})", r.epoch));
        }
        if r.max_wal > journal_bound {
            eprintln!(
                "FAIL: epoch {}: WAL {} exceeds bound {journal_bound}",
                r.epoch, r.max_wal
            );
            failed.push(format!("wal bound (epoch {})", r.epoch));
        }
    }
    // Then drift: second-half maxima must not exceed first-half maxima by
    // more than slack — flat, not merely bounded.
    let halves = |f: &dyn Fn(&Row) -> u64| -> (u64, u64) {
        let mid = rows.len() / 2;
        let max = |rs: &[Row]| rs.iter().map(f).max().unwrap_or(0);
        (max(&rows[..mid]), max(&rows[mid..]))
    };
    // Each check carries an absolute floor under which ratio drift is
    // noise: a short (smoke) campaign recovers in a few virtual ms, where
    // one extra refresh round trip can be half the total, and a
    // half-empty journal can double on a straggler. Drift only fails once
    // the second-half max also clears its floor — the full run's values
    // sit far above these, so the flat-curve gate keeps its teeth there.
    let drift_checks: [(&str, (u64, u64), f64, u64); 3] = [
        (
            "journal",
            halves(&|r| r.max_journal as u64),
            1.25,
            CADENCE.every as u64,
        ),
        (
            "wal",
            halves(&|r| r.max_wal as u64),
            1.25,
            CADENCE.every as u64,
        ),
        (
            "recovery time",
            halves(&|r| r.recovery_ns),
            1.5,
            // 50 virtual ms: several full sync + refresh rounds.
            50_000_000,
        ),
    ];
    for (what, (first, second), slack, floor) in drift_checks {
        if second as f64 > first as f64 * slack && second > floor {
            eprintln!("FAIL: {what} drifts: first-half max {first}, second-half max {second}");
            failed.push(format!("{what} drift"));
        }
    }
    let growth = rows.last().unwrap().changes - rows.first().unwrap().changes;
    if growth == 0 {
        eprintln!("FAIL: |C| did not grow — the soak exercised nothing");
        failed.push("|C| growth".to_string());
    }
    println!(
        "soak: {total} reassignments, {restarts} reboots, |C| grew by {growth}, \
         journal bound {journal_bound}, 0 violations"
    );
    if !failed.is_empty() {
        eprintln!(
            "FAIL: {} gate(s) tripped: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
