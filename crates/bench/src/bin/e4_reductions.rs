//! **E4 + E5 / Theorems 1–2** — the consensus reductions, executed.
//!
//! Runs Algorithm 1 (consensus from weight reassignment) and Algorithm 2
//! (consensus from pairwise weight reassignment) against the linearizable
//! oracles across system sizes and many adversarial interleavings, checking
//! Agreement / Validity / Termination every time. Also runs the *naive*
//! asynchronous implementation to exhibit the Integrity violation that
//! makes the oracle necessary.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::{f2, print_table, Stats};
use awr_core::naive::run_theorem1_race;
use awr_core::reduction::{run_alg1, run_alg2};

fn main() {
    let seeds = 200u64;
    let mut rows = Vec::new();

    for &(n, f) in &[(3usize, 1usize), (4, 1), (5, 2), (7, 2), (7, 3), (10, 4)] {
        let mut polls = Vec::new();
        let mut winners = std::collections::BTreeSet::new();
        let mut ok = 0u64;
        for seed in 0..seeds {
            let run = run_alg1(n, f, (0..n as u64).collect(), seed);
            if run.agreement() && run.validity() {
                ok += 1;
            }
            winners.insert(*run.decided().expect("agreement"));
            polls.push(run.poll_iterations as f64);
        }
        let st = Stats::of(&polls);
        rows.push(vec![
            format!("Alg 1  n={n} f={f}"),
            format!("{ok}/{seeds}"),
            winners.len().to_string(),
            f2(st.mean),
            f2(st.max),
        ]);
    }

    for &(n, f) in &[(4usize, 1usize), (7, 2), (9, 3), (10, 4)] {
        let mut polls = Vec::new();
        let mut winners = std::collections::BTreeSet::new();
        let mut ok = 0u64;
        let mut outside_f = true;
        for seed in 0..seeds {
            let run = run_alg2(n, f, (0..n as u64).collect(), seed);
            if run.agreement() && run.validity() {
                ok += 1;
            }
            let w = *run.decided().expect("agreement");
            outside_f &= w >= f as u64; // winner proposed by S \ F
            winners.insert(w);
            polls.push(run.poll_iterations as f64);
        }
        let st = Stats::of(&polls);
        rows.push(vec![
            format!(
                "Alg 2  n={n} f={f}{}",
                if outside_f { " (S\\F)" } else { " (!)" }
            ),
            format!("{ok}/{seeds}"),
            winners.len().to_string(),
            f2(st.mean),
            f2(st.max),
        ]);
    }

    print_table(
        "E4/E5 — consensus via the weight-reassignment oracles",
        &[
            "reduction",
            "agreement+validity",
            "distinct winners across seeds",
            "mean polls",
            "max polls",
        ],
        &rows,
    );

    // The naive protocol: local checks only → Integrity breaks.
    let mut rows = Vec::new();
    for &(n, f) in &[(4usize, 1usize), (7, 3), (10, 4)] {
        let mut violated = 0u64;
        let trials = 50;
        for seed in 0..trials {
            let (_, ok) = run_theorem1_race(n, f, seed);
            if !ok {
                violated += 1;
            }
        }
        rows.push(vec![format!("n={n} f={f}"), format!("{violated}/{trials}")]);
    }
    print_table(
        "E4b — naive asynchronous reassignment: Integrity violations",
        &["system", "violating runs"],
        &rows,
    );
    println!(
        "\nShape check: the oracle-backed reductions decide unanimously on every\n\
         seed (Theorems 1–2), while the naive local-check protocol violates\n\
         Integrity on every concurrent schedule — asynchronous weight\n\
         reassignment is consensus-hard."
    );
}
