//! Bandwidth benchmark: steady-state *operation latency* under the
//! delta-negotiated wire (`WireMode::Negotiate`) versus the paper-literal
//! full-set wire (`WireMode::ForceFull`), on a constrained-uplink topology
//! where message sizes shape the schedule.
//!
//! `bench_wire` showed the delta wire keeps bytes/op flat in |C|; this
//! benchmark closes the loop by *simulating* those bytes: every send is
//! charged transmission time (`wire_size / bandwidth`) and serializes on
//! its sender's uplink (see `awr_sim::constrained_uplink`). Under the full
//! wire each `R`/`RAck`/`W`/`WAck` ships all of `C`, so a phase broadcast
//! occupies the client's uplink O(|C|) long and mean op latency degrades
//! linearly in |C|; under negotiation the phases carry O(1) digests and
//! the latency curve stays flat — which is what the JSON output pins and
//! the `--smoke` mode asserts for CI.
//!
//! Run with: `cargo run --release --bin bench_bandwidth [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_core::RpConfig;
use awr_sim::constrained_uplink;
use awr_storage::{DynClient, DynOptions, StorageHarness, WireMode};

const N: usize = 5;
const F: usize = 1;
const OPS: usize = 40;
/// Every sender's outgoing traffic shares one 4 MB/s uplink.
const UPLINK_BYTES_PER_SEC: u64 = 4_000_000;

struct Row {
    c_size: usize,
    mode: &'static str,
    mean_latency_ms: f64,
    max_latency_ms: f64,
    bytes_per_op: f64,
    max_uplink_utilization: f64,
}

fn run(extra: usize, wire: WireMode) -> Row {
    let cfg = RpConfig::uniform(N, F);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        1,
        0xBA2D,
        constrained_uplink(N + 1, UPLINK_BYTES_PER_SEC),
        DynOptions {
            wire,
            ..DynOptions::default()
        },
    );
    let big = h.seed_converged_changes(extra);

    for v in 0..OPS as u64 {
        if v % 2 == 0 {
            h.write(0, v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }

    let client = h.client_actor(0);
    let ops = &h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed;
    assert_eq!(ops.len(), OPS);
    let latencies_ms: Vec<f64> = ops
        .iter()
        .map(|o| (o.response - o.invoke) as f64 / 1e6)
        .collect();
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
    let max = latencies_ms.iter().cloned().fold(0.0, f64::max);

    let m = h.world.metrics();
    let cs_bytes = m.bytes_of_kind("R")
        + m.bytes_of_kind("R_A")
        + m.bytes_of_kind("W")
        + m.bytes_of_kind("W_A");
    Row {
        c_size: N + big.len(),
        mode: match wire {
            WireMode::Negotiate => "delta",
            WireMode::ForceFull => "full",
        },
        mean_latency_ms: mean,
        max_latency_ms: max,
        bytes_per_op: cs_bytes as f64 / OPS as f64,
        // The topology serializes each sender's outgoing traffic on one
        // shared uplink, so saturation is measured per uplink, not per
        // (from, to) pair.
        max_uplink_utilization: m.max_uplink_utilization(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_bandwidth.json".to_string());
    let sizes: &[usize] = if smoke {
        &[10, 100]
    } else {
        &[10, 100, 1_000, 10_000]
    };

    let mut rows = Vec::new();
    for &size in sizes {
        rows.push(run(size, WireMode::Negotiate));
        rows.push(run(size, WireMode::ForceFull));
    }

    println!(
        "{:<8} {:<6} {:>14} {:>13} {:>14} {:>10}",
        "|C|", "mode", "mean op (ms)", "max op (ms)", "bytes/op", "max util"
    );
    for r in &rows {
        println!(
            "{:<8} {:<6} {:>14.2} {:>13.2} {:>14.1} {:>10.3}",
            r.c_size,
            r.mode,
            r.mean_latency_ms,
            r.max_latency_ms,
            r.bytes_per_op,
            r.max_uplink_utilization
        );
    }

    let mut json = String::from(
        "{\n  \"bench\": \"bandwidth\",\n  \"unit\": \"mean_op_latency_ms\",\n  \"topology\": \
         {\"kind\": \"constrained_uplink\", \"uplink_bytes_per_sec\": 4000000},\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"c_size\": {}, \"mode\": \"{}\", \"mean_op_latency_ms\": {:.3}, \
             \"max_op_latency_ms\": {:.3}, \"bytes_per_op\": {:.1}, \"max_uplink_utilization\": {:.4}}}{}\n",
            r.c_size,
            r.mode,
            r.mean_latency_ms,
            r.max_latency_ms,
            r.bytes_per_op,
            r.max_uplink_utilization,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");

    let mut ok = true;
    // The CI smoke gate: at every |C|, the delta wire must complete ops
    // faster on the constrained topology — the byte saving is a *latency*
    // saving once bandwidth is simulated.
    for pair in rows.chunks(2) {
        let (delta, full) = (&pair[0], &pair[1]);
        if delta.mean_latency_ms >= full.mean_latency_ms {
            eprintln!(
                "FAIL: |C|={} delta {:.2} ms/op >= full {:.2} ms/op",
                delta.c_size, delta.mean_latency_ms, full.mean_latency_ms
            );
            ok = false;
        }
    }
    // Full runs additionally pin the curve shapes: Negotiate flat (within
    // 2×) across three decades of |C|, ForceFull degrading by well over an
    // order of magnitude as transmission time dominates.
    if !smoke {
        let deltas: Vec<f64> = rows
            .iter()
            .filter(|r| r.mode == "delta")
            .map(|r| r.mean_latency_ms)
            .collect();
        let fulls: Vec<f64> = rows
            .iter()
            .filter(|r| r.mode == "full")
            .map(|r| r.mean_latency_ms)
            .collect();
        let delta_spread = deltas.iter().cloned().fold(0.0, f64::max)
            / deltas.iter().cloned().fold(f64::INFINITY, f64::min);
        if delta_spread > 2.0 {
            eprintln!("FAIL: delta latency not flat (spread {delta_spread:.2}x)");
            ok = false;
        }
        let full_growth = fulls.last().unwrap() / fulls.first().unwrap();
        if full_growth < 10.0 {
            eprintln!("FAIL: full wire did not degrade with |C| (growth {full_growth:.2}x)");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
