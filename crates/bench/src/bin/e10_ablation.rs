//! **E10 / design ablations** — each safety mechanism of the stack is
//! load-bearing:
//!
//! * (a) dropping the `read_changes` write-back phase (Algorithm 3 lines
//!   7–8) breaks Validity-II: two sequential reads can go "backwards";
//! * (b) dropping restart-on-stale-C in the storage yields stale reads the
//!   linearizability checker flags (scenario from the crate tests);
//! * (c) dropping the register refresh on weight gain (Algorithm 4 lines
//!   8–9) lets a freshly-empowered minority quorum serve old data.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::print_table;
use awr_core::{RpConfig, RpHarness};
use awr_sim::{ActorId, TargetedDelay, Time, UniformLatency, SECOND};

use awr_storage::{check_linearizable, DynOptions, DynServer, StorageHarness};
use awr_types::{Ratio, ServerId};

/// (a) Validity-II without the write-back (Algorithm 3 lines 7–8): an
/// origin crashes mid-broadcast so one server alone holds the change pair.
/// A "weak read" (union of f+1 replies, no write-back) that touches that
/// server returns the change; a later weak read that misses the server
/// does not contain it — the Validity-II regression the write-back phase
/// prevents. With the real `read_changes` (write-back on), the first read
/// stores its result at n − f servers, so every later read contains it.
fn ablation_a() -> (usize, usize) {
    let trials = 10u64;
    let mut weak_violations = 0usize;
    for seed in 0..trials {
        let cfg = RpConfig::uniform(7, 2);
        // Hold every server→server message out of s4 (origin) and s1
        // (sole recipient), except s4→s1 itself. Client links stay open.
        let hold = Time(600 * SECOND);
        let is_srv = |a: ActorId| a.index() < 7;
        let pred = move |f: ActorId, t: ActorId| {
            (f == ActorId(3) && is_srv(t) && t != ActorId(0) && t != ActorId(3))
                || (f == ActorId(0) && is_srv(t) && t != ActorId(0))
        };
        let latency = TargetedDelay::new(UniformLatency::new(1_000, 10_000), pred, hold);
        let mut h = RpHarness::build(cfg, 2, seed, latency);
        // s4 starts transfer(s4, s1, 0.2); only s1 ever hears it; s4 crashes.
        h.transfer_async(ServerId(3), ServerId(0), Ratio::dec("0.2"))
            .unwrap();
        h.world.run_for(50_000_000); // 50 ms: the pair reaches s1 only
        h.world.crash_now(ActorId(3));

        // Weak read #1 over {s1, s2, s3}: sees the stranded pair.
        let weak = |h: &RpHarness, ids: [u32; 3]| -> awr_types::ChangeSet {
            ids.iter().fold(awr_types::ChangeSet::new(), |acc, &i| {
                acc.union(&h.server_changes(ServerId(i)).restricted_to(ServerId(0)))
            })
        };
        let r1 = weak(&h, [0, 1, 2]);
        // Weak read #2 over {s5, s6, s7}: no write-back happened → misses it.
        let r2 = weak(&h, [4, 5, 6]);
        if !r2.contains_all(&r1) {
            weak_violations += 1;
        }

        // Control: the real read_changes (write-back ON) makes whatever it
        // returns durable — every later read, however weak, contains it.
        // (It need not return the stranded pair: that transfer never
        // completed, so Validity-II makes no promise about it.)
        let real = h.read_changes(0, ServerId(0)).expect("read_changes");
        let r2_after = weak(&h, [4, 5, 6]);
        assert!(
            r2_after.contains_all(&real.changes),
            "write-back must have stored the returned set at n − f servers"
        );
    }
    (weak_violations, trials as usize)
}

/// (b) restart-on-stale off → stale read (the crate-test scenario).
fn ablation_b(restart_on_stale: bool) -> (Option<u64>, bool) {
    let reader = ActorId(7);
    let writer = ActorId(8);
    let heavy = |a: ActorId| a.index() < 3;
    let light = |a: ActorId| (3..7).contains(&a.index());
    let hold = Time(600 * SECOND);
    let base = UniformLatency::new(1_000, 10_000);
    let d1 = TargetedDelay::new(
        base,
        move |f, t| (f == reader && heavy(t)) || (heavy(f) && t == reader),
        hold,
    );
    let d2 = TargetedDelay::new(d1, move |f, t| f == writer && light(t), hold);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(7, 2),
        3,
        42,
        d2,
        DynOptions {
            restart_on_stale,
            ..DynOptions::default()
        },
    );
    h.write(2, 1).unwrap();
    for (from, to) in [(3, 0), (4, 1), (5, 2)] {
        h.transfer_and_wait(ServerId(from), ServerId(to), Ratio::dec("0.25"))
            .unwrap();
    }
    let server_changes = h
        .world
        .actor::<DynServer<u64>>(ActorId(0))
        .unwrap()
        .changes()
        .clone();
    let c1 = h.client_actor(1);
    h.world
        .actor_mut::<awr_storage::DynClient<u64>>(c1)
        .unwrap()
        .driver
        .changes = server_changes;
    h.write(1, 2).unwrap();
    let (v, _) = h.read(0).unwrap();
    let atomic = check_linearizable(&h.history()).is_ok();
    (v, atomic)
}

/// (c) refresh-on-gain off → a newly-heavy quorum can miss the last write.
/// Scenario: v is written under the initial map to the four light servers
/// (heavy trio delayed); then weight concentrates on the trio; a reader on
/// the NEW map, hearing only the trio, reads it alone. With the refresh,
/// the gaining servers pulled v before their gain applied; without it they
/// serve the initial (empty) register — a read of ⊥ after a completed
/// write.
fn ablation_c(refresh_on_gain: bool) -> (Option<u64>, bool) {
    let reader = ActorId(7); // client 0
    let writer = ActorId(8); // client 1
    let heavy = |a: ActorId| a.index() < 3;
    let light = |a: ActorId| (3..7).contains(&a.index());
    let hold = Time(600 * SECOND);
    let base = UniformLatency::new(1_000, 10_000);
    // Writer cannot reach the heavy trio: its write lands on {s4..s7} only.
    let d1 = TargetedDelay::new(base, move |f, t| f == writer && heavy(t), hold);
    // Reader cannot hear the light servers: its quorum is exactly the trio.
    let d = TargetedDelay::new(
        d1,
        move |f, t| (f == reader && light(t)) || (light(f) && t == reader),
        hold,
    );
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(7, 2),
        3,
        43,
        d,
        DynOptions {
            refresh_on_gain,
            ..DynOptions::default()
        },
    );
    // v = 9 written under the initial uniform map: {s4..s7} = 4 > 3.5.
    h.write(1, 9).unwrap();
    // Weight concentrates on the trio (donors are the light servers).
    for (from, to) in [(3, 0), (4, 1), (5, 2)] {
        h.transfer_and_wait(ServerId(from), ServerId(to), Ratio::dec("0.25"))
            .unwrap();
    }
    // Bounded advance: let applies/refreshes finish without draining the
    // adversary's held messages (settle would fast-forward past the hold).
    h.world.run_for(SECOND);
    // Reader 0 reads under the new map; sync its C so no restart needed.
    let server_changes = h
        .world
        .actor::<DynServer<u64>>(ActorId(0))
        .unwrap()
        .changes()
        .clone();
    let c0 = h.client_actor(0);
    h.world
        .actor_mut::<awr_storage::DynClient<u64>>(c0)
        .unwrap()
        .driver
        .changes = server_changes;
    let (v, _) = h.read(0).unwrap();
    let atomic = check_linearizable(&h.history()).is_ok();
    (v, atomic)
}

fn main() {
    let (viol_a, trials_a) = ablation_a();
    let (v_b_on, ok_b_on) = ablation_b(true);
    let (v_b_off, ok_b_off) = ablation_b(false);
    let (v_c_on, ok_c_on) = ablation_c(true);
    let (v_c_off, ok_c_off) = ablation_c(false);

    print_table(
        "E10 — ablations: what breaks when each mechanism is removed",
        &["ablation", "mechanism ON", "mechanism OFF"],
        &[
            vec![
                "(a) read_changes write-back → Validity-II".into(),
                "0 violations (protocol reads)".into(),
                format!("{viol_a}/{trials_a} weak-read runs violate Validity-II"),
            ],
            vec![
                "(b) restart on stale C → atomicity".into(),
                format!("read = {v_b_on:?}, linearizable = {ok_b_on}"),
                format!("read = {v_b_off:?}, linearizable = {ok_b_off}"),
            ],
            vec![
                "(c) register refresh on gain → atomicity".into(),
                format!("read = {v_c_on:?}, linearizable = {ok_c_on}"),
                format!("read = {v_c_off:?}, linearizable = {ok_c_off}"),
            ],
        ],
    );

    assert!(ok_b_on, "paper protocol must be atomic (b)");
    assert!(!ok_b_off, "ablation (b) must break atomicity");
    assert!(ok_c_on, "paper protocol must be atomic (c)");
    assert!(
        !ok_c_off,
        "ablation (c) must break atomicity (stale minority quorum)"
    );
    println!(
        "\nShape check: every mechanism the paper's algorithms carry is\n\
         load-bearing; removing any one produces violations that the\n\
         validators catch."
    );
}
