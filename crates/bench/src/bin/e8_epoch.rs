//! **E8 / §VIII vs \[11\]** — epochless restricted pairwise reassignment vs
//! the epoch-based baseline: request→effect delay and total-weight
//! trajectory.
//!
//! The same random reassignment demand is fed to (a) the epoch-based engine
//! with several epoch lengths and (b) the epochless restricted pairwise
//! protocol running on the simulated WAN. The paper's two criticisms of
//! reference 11 become measurable: application delay is lower-bounded by the epoch
//! length, and unmatched decreases leak total voting power.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::{f2, print_table};
use awr_core::{RpConfig, RpHarness};
use awr_epoch::{EpochEngine, EpochRequest};
use awr_sim::{five_region_wan, Time, MILLI, SECOND};
use awr_types::{Ratio, ServerId, WeightMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 7;
const F: usize = 2;
const REQUESTS: usize = 40;

/// The shared demand: a sequence of (submit-time, from, to, delta) pairwise
/// moves, expressed for the epoch engine as a decrease+increase pair.
fn demand(seed: u64) -> Vec<(Time, ServerId, ServerId, Ratio)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..REQUESTS)
        .map(|i| {
            let from = ServerId(rng.random_range(0..N as u32));
            let mut to = ServerId(rng.random_range(0..N as u32));
            while to == from {
                to = ServerId(rng.random_range(0..N as u32));
            }
            let delta = Ratio::new(rng.random_range(1..=3i128), 100);
            (Time(i as u64 * 120 * MILLI), from, to, delta)
        })
        .collect()
}

fn run_epoch_based(epoch_ns: u64, seed: u64) -> (f64, Ratio) {
    let mut e = EpochEngine::new(WeightMap::uniform(N, Ratio::ONE), F);
    let mut boundary = epoch_ns;
    // The decrease and the matching increase arrive 300 ms apart (monitoring
    // and reaction are not atomic); pairs that straddle an epoch boundary
    // leave the decrease unmatched — the total-weight leak of \[11\].
    let mut events: Vec<(Time, ServerId, Ratio)> = Vec::new();
    for (t, from, to, delta) in demand(seed) {
        events.push((t, from, -delta));
        events.push((Time(t.nanos() + 300 * MILLI), to, delta));
    }
    events.sort_by_key(|(t, s, _)| (*t, *s));
    for (t, server, delta) in events {
        while t.nanos() >= boundary {
            e.end_epoch(Time(boundary));
            boundary += epoch_ns;
        }
        e.submit(EpochRequest {
            server,
            delta,
            submitted: t,
        });
    }
    e.end_epoch(Time(boundary));
    (e.mean_apply_delay_ms(), e.weights().total())
}

fn run_epochless(seed: u64) -> (f64, Ratio) {
    let cfg = RpConfig::uniform(N, F);
    let mut h = RpHarness::build(cfg, 1, seed, five_region_wan(N + 1, 0.1));
    let mut delays = Vec::new();
    for (t, from, to, delta) in demand(seed) {
        // Advance virtual time to the submission instant.
        let now = h.world.now();
        if t > now {
            h.world.run_for(t - now);
        }
        let t0 = h.world.now();
        if h.transfer_and_wait(from, to, delta).is_ok() {
            delays.push((h.world.now() - t0) as f64 / 1e6);
        }
    }
    h.settle();
    let total = h.weights_seen_by(ServerId(0)).total();
    let mean = delays.iter().sum::<f64>() / delays.len().max(1) as f64;
    (mean, total)
}

fn main() {
    let seed = 0xE8;
    let mut rows = Vec::new();
    for &epoch_s in &[1u64, 5, 15] {
        let (delay, total) = run_epoch_based(epoch_s * SECOND, seed);
        rows.push(vec![
            format!("epoch-based [11], epoch = {epoch_s}s"),
            f2(delay),
            total.to_string(),
        ]);
    }
    let (delay, total) = run_epochless(seed);
    rows.push(vec![
        "epochless restricted pairwise (this paper)".into(),
        f2(delay),
        total.to_string(),
    ]);

    print_table(
        "E8 — reassignment application delay and total-weight conservation",
        &[
            "protocol",
            "mean request→effect delay (ms)",
            "final total weight",
        ],
        &rows,
    );
    println!(
        "\nShape check: epoch-based delay grows with the epoch length (requests\n\
         wait for the boundary) and the total weight decays when a decrease's\n\
         matching increase lands in the next epoch; the epochless protocol\n\
         applies transfers in one WAN round trip and conserves the total\n\
         exactly (initial total = {})",
        N
    );
}
