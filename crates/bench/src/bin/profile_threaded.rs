//! Profiles `Arc`-backed change-set refcount traffic in the threaded
//! runtime at high fan-out (the PR 1 follow-up recorded in ROADMAP).
//!
//! Since messages share copy-on-write `ChangeSet` storage, every clone and
//! drop of a message is an atomic increment/decrement on ONE shared
//! refcount — and in [`ThreadedSystem`] those hit from many threads at
//! once: a relay actor clones the payload per peer while every sink thread
//! decrements it on drop, all contending for the same cache line.
//!
//! The harness: one relay actor broadcasts each injected seed message to
//! `fanout` sink actors (each on its own thread). Three payloads separate
//! the costs:
//!
//! * `shared` — a 1000-change `ChangeSet` (clone = one refcount bump);
//! * `deep`   — a `Vec<u64>` of equal byte size (clone = alloc + memcpy);
//! * `tiny`   — no payload (pure channel/runtime overhead baseline).
//!
//! Timing covers inject → all broadcasts sent → every sink drained
//! (shutdown joins). Findings and the resulting delivery-path fix are
//! written up in `docs/THREADED_NOTES.md`.
//!
//! Run with: `cargo run --release --bin profile_threaded`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use std::any::Any;
use std::time::Instant;

use awr_sim::{Actor, ActorId, Context, Message, ThreadedSystem};
use awr_types::{Change, ChangeSet, Ratio, ServerId};

#[derive(Clone, Debug)]
enum ProfMsg {
    /// Broadcast me to every sink.
    Seed(Payload),
}

#[derive(Clone, Debug)]
enum Payload {
    Shared(ChangeSet),
    Deep(Vec<u64>),
    Tiny,
}

impl Payload {
    /// A trivial read so sinks touch the payload they received, like a
    /// real handler would.
    fn probe(&self) -> usize {
        match self {
            Payload::Shared(c) => c.len(),
            Payload::Deep(v) => v.len(),
            Payload::Tiny => 0,
        }
    }
}

impl Message for ProfMsg {
    fn kind(&self) -> &'static str {
        "prof"
    }

    // Keep accounting cheap and size-independent: the profile measures
    // clone/drop cost, not wire metering.
    fn wire_size(&self) -> usize {
        16
    }
}

struct Relay {
    sinks: Vec<ActorId>,
}

impl Actor for Relay {
    type Msg = ProfMsg;

    fn on_message(&mut self, _from: ActorId, msg: ProfMsg, ctx: &mut Context<'_, ProfMsg>) {
        ctx.send_to_all(self.sinks.iter().copied(), msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Sink {
    received: u64,
    probed: usize,
}

impl Actor for Sink {
    type Msg = ProfMsg;

    fn on_message(&mut self, _from: ActorId, msg: ProfMsg, _ctx: &mut Context<'_, ProfMsg>) {
        let ProfMsg::Seed(payload) = &msg;
        self.probed = self.probed.max(payload.probe());
        // The payload drops here — on this sink's thread.
        drop(msg);
        self.received += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn big_change_set(changes: usize) -> ChangeSet {
    let mut set = ChangeSet::new();
    for i in 0..changes as u64 {
        let t = ServerId((i % 7) as u32);
        set.insert(Change::new(t, 1_000 + i, t, Ratio::new(1, 1000)));
    }
    set
}

/// Returns broadcast deliveries per second.
fn run(payload: &Payload, fanout: usize, seeds: u64) -> f64 {
    let mut actors: Vec<Box<dyn Actor<Msg = ProfMsg> + Send>> = Vec::new();
    actors.push(Box::new(Relay {
        sinks: (1..=fanout).map(ActorId).collect(),
    }));
    for _ in 0..fanout {
        actors.push(Box::new(Sink {
            received: 0,
            probed: 0,
        }));
    }
    let sys = ThreadedSystem::spawn_boxed(actors, 1);
    let metrics = sys.metrics();
    let expected = seeds + seeds * fanout as u64;

    let t0 = Instant::now();
    for _ in 0..seeds {
        sys.inject(ActorId(0), ActorId(0), ProfMsg::Seed(payload.clone()));
    }
    // Wait for the relay to have sent every broadcast, so the Stop markers
    // land *behind* all deliveries and shutdown joins a fully-drained run.
    while metrics.snapshot().messages_sent < expected {
        std::thread::yield_now();
    }
    let actors = sys.shutdown();
    let dt = t0.elapsed();

    let mut delivered = 0u64;
    for a in &actors[1..] {
        let sink = a.as_any().downcast_ref::<Sink>().expect("sink");
        delivered += sink.received;
        assert_eq!(sink.probed, payload.probe(), "payload mangled in flight");
    }
    assert_eq!(delivered, seeds * fanout as u64, "deliveries lost");
    delivered as f64 / dt.as_secs_f64()
}

fn main() {
    const CHANGES: usize = 1_000;
    let shared = Payload::Shared(big_change_set(CHANGES));
    // A deep payload of comparable byte volume (a Change is ~48 bytes).
    let deep = Payload::Deep(vec![0u64; CHANGES * 6]);
    let tiny = Payload::Tiny;

    let seeds: u64 = 2_000;
    println!(
        "{:>7} {:>15} {:>15} {:>15}   (deliveries/sec, {} seeds)",
        "fanout", "shared-arc", "deep-copy", "tiny", seeds
    );
    for &fanout in &[2usize, 8, 32] {
        let s = run(&shared, fanout, seeds);
        let d = run(&deep, fanout, seeds);
        let t = run(&tiny, fanout, seeds);
        println!(
            "{fanout:>7} {s:>15.0} {d:>15.0} {t:>15.0}   shared/deep {:.2}x, shared/tiny {:.2}x",
            s / d,
            s / t
        );
    }
}
