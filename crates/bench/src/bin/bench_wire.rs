//! Wire-cost benchmark: steady-state bytes per storage operation under the
//! delta-negotiated wire (`WireMode::Negotiate`) versus the paper-literal
//! full-set wire (`WireMode::ForceFull`), across change-set sizes.
//!
//! Every participant is pre-seeded with the same converged change set of
//! |C| changes, then a closed loop of reads and writes runs in that steady
//! state. Under the full wire each `R`/`W`/`RAck`/`WAck` ships all of `C`,
//! so bytes/op grows O(|C|); under negotiation the phases carry O(1)
//! digests, so bytes/op is flat in |C| — which is the property the JSON
//! output pins and the `--smoke` mode asserts.
//!
//! Run with: `cargo run --release --bin bench_wire [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_core::RpConfig;
use awr_sim::UniformLatency;
use awr_storage::{DynOptions, StorageHarness, WireMode};

const N: usize = 5;
const F: usize = 1;
const OPS: usize = 40;

struct Row {
    c_size: usize,
    mode: &'static str,
    bytes_per_op: f64,
    mean_r_bytes: f64,
    mean_rack_bytes: f64,
}

fn run(extra: usize, wire: WireMode) -> Row {
    let cfg = RpConfig::uniform(N, F);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        1,
        0xC0FFEE,
        UniformLatency::new(1_000, 20_000),
        DynOptions {
            wire,
            ..DynOptions::default()
        },
    );
    let big = h.seed_converged_changes(extra);

    for v in 0..OPS as u64 {
        if v % 2 == 0 {
            h.write(0, v).unwrap();
        } else {
            h.read(0).unwrap();
        }
    }

    let m = h.world.metrics();
    let cs_bytes = m.bytes_of_kind("R")
        + m.bytes_of_kind("R_A")
        + m.bytes_of_kind("W")
        + m.bytes_of_kind("W_A");
    Row {
        c_size: N + big.len(),
        mode: match wire {
            WireMode::Negotiate => "delta",
            WireMode::ForceFull => "full",
        },
        bytes_per_op: cs_bytes as f64 / OPS as f64,
        mean_r_bytes: m.mean_bytes_of_kind("R"),
        mean_rack_bytes: m.mean_bytes_of_kind("R_A"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_wire.json".to_string());
    let sizes: &[usize] = if smoke {
        &[10, 100]
    } else {
        &[10, 100, 1_000, 10_000]
    };

    let mut rows = Vec::new();
    for &size in sizes {
        rows.push(run(size, WireMode::Negotiate));
        rows.push(run(size, WireMode::ForceFull));
    }

    println!(
        "{:<8} {:<6} {:>14} {:>12} {:>12}",
        "|C|", "mode", "bytes/op", "mean R", "mean R_A"
    );
    for r in &rows {
        println!(
            "{:<8} {:<6} {:>14.1} {:>12.1} {:>12.1}",
            r.c_size, r.mode, r.bytes_per_op, r.mean_r_bytes, r.mean_rack_bytes
        );
    }

    let mut json = String::from(
        "{\n  \"bench\": \"wire\",\n  \"unit\": \"bytes_per_op\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"c_size\": {}, \"mode\": \"{}\", \"bytes_per_op\": {:.1}, \"mean_r_bytes\": {:.1}, \"mean_rack_bytes\": {:.1}}}{}\n",
            r.c_size,
            r.mode,
            r.bytes_per_op,
            r.mean_r_bytes,
            r.mean_rack_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");

    // In every pairing, the delta wire must move fewer steady-state bytes
    // per op than the full wire (the CI smoke gate).
    let mut ok = true;
    for pair in rows.chunks(2) {
        let (delta, full) = (&pair[0], &pair[1]);
        if delta.bytes_per_op >= full.bytes_per_op {
            eprintln!(
                "FAIL: |C|={} delta {:.1} B/op >= full {:.1} B/op",
                delta.c_size, delta.bytes_per_op, full.bytes_per_op
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
