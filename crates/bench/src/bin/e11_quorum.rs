//! **E11 / Definition 1 + Property 1** — how weighted quorums respond to
//! weight skew, and where the availability boundary sits.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::{f2, print_table};
use awr_quorum::{
    approximate_load, fastest_quorum_latency, skew_sweep, GridQuorumSystem, MajorityQuorumSystem,
    QuorumSystem, TreeQuorumSystem, WeightedMajorityQuorumSystem,
};
use awr_types::{Ratio, WeightMap};

fn main() {
    // Sweep: 2 of 7 servers get increasingly heavy (total fixed at 7).
    let steps: Vec<Ratio> = ["1", "1.25", "1.5", "1.75", "2", "2.25", "2.5", "2.75", "3"]
        .iter()
        .map(|s| Ratio::dec(s))
        .collect();
    let rows: Vec<Vec<String>> = skew_sweep(7, 2, 2, &steps)
        .into_iter()
        .map(|r| {
            vec![
                r.heavy_weight.to_string(),
                r.min_quorum.to_string(),
                if r.available {
                    "yes"
                } else {
                    "NO (Property 1)"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        "E11a — skew sweep: 2 heavy servers of 7, f = 2, total weight 7",
        &["heavy weight", "min quorum size", "available with f=2?"],
        &rows,
    );

    // Quorum formation latency: heterogeneous response times, weighted vs
    // uniform quorums (the §I motivation in one table).
    let latencies = [12.0, 15.0, 18.0, 90.0, 110.0, 130.0, 150.0];
    let mut rows = Vec::new();
    for (label, w) in [
        ("uniform weights", WeightMap::uniform(7, Ratio::ONE)),
        (
            "weighted (policy-like: fast servers heavy)",
            WeightMap::dec(&["1.3", "1.3", "1.3", "0.78", "0.78", "0.77", "0.77"]),
        ),
    ] {
        let qs = WeightedMajorityQuorumSystem::new(w);
        rows.push(vec![
            label.to_string(),
            qs.min_quorum_size().to_string(),
            f2(fastest_quorum_latency(&qs, &latencies).unwrap()),
        ]);
    }
    print_table(
        "E11b — fastest-quorum latency with heterogeneous replicas (ms)",
        &["quorum system", "min quorum size", "fastest quorum latency"],
        &rows,
    );
    // E11c: the quorum-system families the paper's §I surveys, side by
    // side on 9 servers: min quorum size and Naor–Wool load.
    let maj = MajorityQuorumSystem::new(9);
    let grid = GridQuorumSystem::new(3, 3);
    let tree = TreeQuorumSystem::new(9);
    let wmqs = WeightedMajorityQuorumSystem::new(WeightMap::dec(&[
        "2", "2", "0.75", "0.75", "0.75", "0.75", "0.75", "0.75", "0.5",
    ]));
    let mut rows = Vec::new();
    for (name, min_q, load) in [
        (
            "majority (MQS)",
            maj.min_quorum_size(),
            approximate_load(&maj, 300).load,
        ),
        (
            "grid 3×3 [2]",
            grid.min_quorum_size(),
            approximate_load(&grid, 300).load,
        ),
        (
            "tree (9 nodes) [3]",
            tree.min_quorum_size(),
            approximate_load(&tree, 300).load,
        ),
        (
            "weighted majority (Def. 1)",
            wmqs.min_quorum_size(),
            approximate_load(&wmqs, 300).load,
        ),
    ] {
        rows.push(vec![name.to_string(), min_q.to_string(), f2(load)]);
    }
    print_table(
        "E11c — quorum-system families on 9 servers (the paper's §I survey)",
        &["system", "min quorum size", "Naor–Wool load (approx.)"],
        &rows,
    );

    println!(
        "\nShape check: as skew grows, quorums shrink until the f heaviest\n\
         servers reach half the total and Property 1 (availability) fails —\n\
         the exact boundary the Integrity property protects. With weights\n\
         aligned to speed, the fastest quorum avoids slow replicas entirely."
    );
}
