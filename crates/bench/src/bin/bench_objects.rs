//! Object-count scaling benchmark: per-operation wire bytes and latency
//! must be *flat* in the number of objects the shard hosts.
//!
//! The keyed refactor's claim is that the weighted configuration is shared
//! infrastructure: however many registers a server stores, a read or write
//! touches one of them and references `C` by an O(1) summary, so growing
//! the key space 15 → 10k must not grow per-op cost under
//! [`awr_storage::WireMode::Negotiate`]. The run prepopulates `objects` keys through
//! the full protocol, then measures a Zipf-skewed read/write mix while
//! weight reassignments race the operations across the whole key space
//! (each completed transfer re-weights every object and forces the
//! client's stale-`C` restart path).
//!
//! The refresh leg — the gaining server's per-reassignment price of
//! catching the whole object space up — is reported, not gated. Below
//! `refresh_tags_cap` a `RefreshR` presents one tag per stored key (its
//! cost grows with the key space); above the cap it degrades to an O(1)
//! commutative digest of the tag map, falling back to a targeted per-key
//! exchange only for repliers whose digest mismatches. The reported
//! column shows the crossover: the amortized cost is linear in the key
//! space up to the cap, then flat.
//!
//! The `--smoke` gate (CI) runs the two smallest points and asserts
//! flatness; the full run also covers 1k and 10k objects and writes
//! BENCH_objects.json.
//!
//! Run with: `cargo run --release --bin bench_objects [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_core::RpConfig;
use awr_sim::UniformLatency;
use awr_storage::workload::{KeyDistribution, KeySampler};
use awr_storage::{check_linearizable_keyed, DynClient, DynOptions, StorageHarness};
use awr_types::{ObjectId, Ratio, ServerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 5;
const F: usize = 1;
const SEED: u64 = 0x0B7EC7;

const ABD_KINDS: [&str; 4] = ["R", "R_A", "W", "W_A"];
const REFRESH_KINDS: [&str; 2] = ["RefR", "RefA"];

struct Row {
    objects: usize,
    measured_ops: usize,
    /// Mean ABD-phase wire bytes per measured op.
    abd_bytes_per_op: f64,
    /// Mean op latency over the measured window, virtual ms.
    mean_latency_ms: f64,
    /// Refresh-leg bytes per reassignment: tag-map requests grow with the
    /// key space below `refresh_tags_cap`, digest-mode requests above it
    /// are O(1) (acks stay delta-encoded headers either way).
    refresh_bytes_per_transfer: f64,
    /// Stale-`C` restarts over the measured window.
    restarts: u64,
    /// Bytes attributed to the hottest measured key (per-object metrics).
    hot_key_bytes: u64,
}

fn kinds_bytes(m: &awr_sim::Metrics, kinds: &[&str]) -> u64 {
    kinds.iter().map(|k| m.bytes_of_kind(k)).sum()
}

fn run(objects: usize, ops: usize) -> Row {
    let cfg = RpConfig::uniform(N, F);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        1,
        SEED,
        UniformLatency::new(1_000, 20_000),
        DynOptions::default(),
    );
    // Prepopulate every key through the full protocol: the servers end up
    // holding `objects` registers each.
    for o in 0..objects as u64 {
        h.write_obj(0, ObjectId(o), o).unwrap();
    }

    let sampler = KeySampler::new(objects, KeyDistribution::Zipfian { exponent: 1.0 });
    let mut rng = StdRng::seed_from_u64(SEED ^ objects as u64);
    let before = h.world.metrics().clone();
    let client = h.client_actor(0);
    let completed_before = h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed
        .len();
    let restarts_before = h.total_restarts();

    // Measured window: Zipf-skewed ops racing two reassignment bursts that
    // each re-weight the whole shard (and refresh all `objects` registers
    // on the gaining side).
    let mut next_val = 1_000_000u64;
    let mut transfers = 0usize;
    for i in 0..ops {
        if i == ops / 3 {
            h.transfer_queued(ServerId(3), ServerId(0), Ratio::dec("0.05"))
                .unwrap();
            transfers += 1;
        }
        if i == 2 * ops / 3 {
            h.transfer_queued(ServerId(0), ServerId(3), Ratio::dec("0.05"))
                .unwrap();
            transfers += 1;
        }
        let obj = sampler.sample(&mut rng);
        if i % 2 == 0 {
            h.write_obj(0, obj, next_val).unwrap();
            next_val += 1;
        } else {
            h.read_obj(0, obj).unwrap();
        }
    }
    h.settle();
    check_linearizable_keyed(&h.history()).expect("keyed history must stay linearizable");

    let after = h.world.metrics().clone();
    let completed = &h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed;
    let lat_ms: Vec<f64> = completed[completed_before..]
        .iter()
        .map(|o| (o.response - o.invoke) as f64 / 1e6)
        .collect();
    assert_eq!(lat_ms.len(), ops);

    let abd_delta = kinds_bytes(&after, &ABD_KINDS) - kinds_bytes(&before, &ABD_KINDS);
    let refresh_delta = kinds_bytes(&after, &REFRESH_KINDS) - kinds_bytes(&before, &REFRESH_KINDS);
    // Windowed like the other deltas: prepopulation traffic (one write per
    // key, near-uniform) must not dilute the measured Zipf skew.
    let hot_key_bytes = (0..objects as u64)
        .map(|o| after.bytes_of_object(o) - before.bytes_of_object(o))
        .max()
        .unwrap_or(0);
    Row {
        objects,
        measured_ops: ops,
        abd_bytes_per_op: abd_delta as f64 / ops as f64,
        mean_latency_ms: lat_ms.iter().sum::<f64>() / ops as f64,
        refresh_bytes_per_transfer: refresh_delta as f64 / transfers as f64,
        restarts: h.total_restarts() - restarts_before,
        hot_key_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_objects.json".to_string());
    let (counts, ops): (&[usize], usize) = if smoke {
        (&[15, 255], 60)
    } else {
        (&[15, 105, 1005, 10005], 300)
    };

    let rows: Vec<Row> = counts.iter().map(|&o| run(o, ops)).collect();

    println!(
        "{:>8} {:>8} {:>16} {:>14} {:>20} {:>9}",
        "objects", "ops", "ABD bytes/op", "mean op (ms)", "refresh B/transfer", "restarts"
    );
    for r in &rows {
        println!(
            "{:>8} {:>8} {:>16.1} {:>14.3} {:>20.0} {:>9}",
            r.objects,
            r.measured_ops,
            r.abd_bytes_per_op,
            r.mean_latency_ms,
            r.refresh_bytes_per_transfer,
            r.restarts
        );
    }

    let mut json = String::from(
        "{\n  \"bench\": \"objects\",\n  \"unit\": \"abd_bytes_per_op\",\n  \"wire\": \
         \"negotiate\",\n  \"workload\": {\"dist\": \"zipf(1.0)\", \"transfers_racing\": 2},\n  \
         \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"objects\": {}, \"measured_ops\": {}, \"abd_bytes_per_op\": {:.2}, \
             \"mean_op_latency_ms\": {:.4}, \"refresh_bytes_per_transfer\": {:.0}, \
             \"restarts\": {}, \"hot_key_bytes\": {}}}{}\n",
            r.objects,
            r.measured_ops,
            r.abd_bytes_per_op,
            r.mean_latency_ms,
            r.refresh_bytes_per_transfer,
            r.restarts,
            r.hot_key_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");

    // The gate: per-op ABD bytes and latency must be flat in object count.
    let bytes: Vec<f64> = rows.iter().map(|r| r.abd_bytes_per_op).collect();
    let lats: Vec<f64> = rows.iter().map(|r| r.mean_latency_ms).collect();
    let spread = |v: &[f64]| -> f64 {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    let mut ok = true;
    let byte_spread = spread(&bytes);
    if byte_spread > 1.10 {
        eprintln!("FAIL: per-op ABD bytes not flat in object count ({byte_spread:.3}x spread)");
        ok = false;
    }
    let lat_spread = spread(&lats);
    if lat_spread > 1.30 {
        eprintln!("FAIL: per-op latency not flat in object count ({lat_spread:.3}x spread)");
        ok = false;
    }
    println!(
        "spread over {}..{} objects: bytes {byte_spread:.3}x, latency {lat_spread:.3}x",
        counts.first().unwrap(),
        counts.last().unwrap()
    );
    if !ok {
        std::process::exit(1);
    }
}
