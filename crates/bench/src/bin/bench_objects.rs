//! Object-count scaling benchmark: per-operation wire bytes and latency
//! must be *flat* in the number of objects the shard hosts.
//!
//! The keyed refactor's claim is that the weighted configuration is shared
//! infrastructure: however many registers a server stores, a read or write
//! touches one of them and references `C` by an O(1) summary, so growing
//! the key space 15 → 10k must not grow per-op cost under
//! [`awr_storage::WireMode::Negotiate`]. The run prepopulates `objects` keys through
//! the full protocol, then measures a Zipf-skewed read/write mix while
//! weight reassignments race the operations across the whole key space
//! (each completed transfer re-weights every object and forces the
//! client's stale-`C` restart path).
//!
//! The refresh leg — the gaining server's per-reassignment price of
//! catching the whole object space up — is reported, not gated. Below
//! `refresh_tags_cap` a `RefreshR` presents one tag per stored key (its
//! cost grows with the key space); above the cap it degrades to an O(1)
//! commutative digest of the tag map, falling back to a targeted per-key
//! exchange only for repliers whose digest mismatches. The reported
//! column shows the crossover: the amortized cost is linear in the key
//! space up to the cap, then flat.
//!
//! A second section compares [`awr_storage::ReadMode::FastPath`] against
//! the paper-literal `TwoPhase` baseline on a fixed key space, sweeping
//! Zipf skew: hit rate, ABD bytes/op, read p50/p99, and hot-key bytes per
//! mode. Gated: the fast path must fire (nonzero hit rate everywhere,
//! ≥ 30% at skew ≥ 1.0 on the full run) and must beat the baseline on
//! bytes and read-tail latency.
//!
//! The `--smoke` gate (CI) runs the two smallest points and asserts
//! flatness; the full run also covers 1k and 10k objects and writes
//! BENCH_objects.json.
//!
//! Run with: `cargo run --release --bin bench_objects [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_core::RpConfig;
use awr_sim::UniformLatency;
use awr_storage::workload::{KeyDistribution, KeySampler};
use awr_storage::{
    check_linearizable_keyed, DynClient, DynOptions, OpKind, ReadMode, StorageHarness,
};
use awr_types::{ObjectId, Ratio, ServerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 5;
const F: usize = 1;
const SEED: u64 = 0x0B7EC7;

const ABD_KINDS: [&str; 4] = ["R", "R_A", "W", "W_A"];
const REFRESH_KINDS: [&str; 2] = ["RefR", "RefA"];

struct Row {
    objects: usize,
    measured_ops: usize,
    /// Mean ABD-phase wire bytes per measured op.
    abd_bytes_per_op: f64,
    /// Mean op latency over the measured window, virtual ms.
    mean_latency_ms: f64,
    /// Refresh-leg bytes per reassignment: tag-map requests grow with the
    /// key space below `refresh_tags_cap`, digest-mode requests above it
    /// are O(1) (acks stay delta-encoded headers either way).
    refresh_bytes_per_transfer: f64,
    /// Stale-`C` restarts over the measured window.
    restarts: u64,
    /// Bytes attributed to the hottest measured key (per-object metrics).
    hot_key_bytes: u64,
}

fn kinds_bytes(m: &awr_sim::Metrics, kinds: &[&str]) -> u64 {
    kinds.iter().map(|k| m.bytes_of_kind(k)).sum()
}

/// One (skew, read-mode) cell of the fast-path comparison.
struct FpRow {
    skew: f64,
    mode: ReadMode,
    /// read_fastpath_hit / (hit + miss); 0 under `TwoPhase` by definition.
    hit_rate: f64,
    abd_bytes_per_op: f64,
    /// Read-op latency percentiles: writes are two-phase under either
    /// mode, so the whole-mix tail is identical modulo latency-draw noise
    /// — the reads are where the saved round trip shows.
    read_p50_ms: f64,
    read_p99_ms: f64,
    hot_key_bytes: u64,
}

/// The fast-path measurement: the same seed-pinned Zipf window as [`run`],
/// but parameterized by skew and read mode so `FastPath` and `TwoPhase`
/// replay the identical invocation schedule (synchronous ops — the stream
/// cannot diverge) and the deltas are the fast path's doing alone.
fn run_fastpath(skew: f64, mode: ReadMode, objects: usize, ops: usize) -> FpRow {
    let cfg = RpConfig::uniform(N, F);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        1,
        SEED,
        UniformLatency::new(1_000, 20_000),
        DynOptions {
            read: mode,
            ..DynOptions::default()
        },
    );
    for o in 0..objects as u64 {
        h.write_obj(0, ObjectId(o), o).unwrap();
    }

    let sampler = KeySampler::new(objects, KeyDistribution::Zipfian { exponent: skew });
    let mut rng = StdRng::seed_from_u64(SEED ^ objects as u64 ^ skew.to_bits());
    let before = h.world.metrics().clone();
    let client = h.client_actor(0);
    let completed_before = h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed
        .len();

    let mut next_val = 2_000_000u64;
    for i in 0..ops {
        if i == ops / 3 {
            h.transfer_queued(ServerId(3), ServerId(0), Ratio::dec("0.05"))
                .unwrap();
        }
        if i == 2 * ops / 3 {
            h.transfer_queued(ServerId(0), ServerId(3), Ratio::dec("0.05"))
                .unwrap();
        }
        let obj = sampler.sample(&mut rng);
        if i % 2 == 0 {
            h.write_obj(0, obj, next_val).unwrap();
            next_val += 1;
        } else {
            h.read_obj(0, obj).unwrap();
        }
    }
    h.settle();
    check_linearizable_keyed(&h.history()).expect("keyed history must stay linearizable");

    let after = h.world.metrics().clone();
    let completed = &h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed;
    let mut lat_ms: Vec<f64> = completed[completed_before..]
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Read(_)))
        .map(|o| (o.response - o.invoke) as f64 / 1e6)
        .collect();
    assert_eq!(lat_ms.len(), ops / 2, "half the measured ops are reads");
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_ms[((lat_ms.len() - 1) as f64 * p) as usize];

    let hits = after.counter("read_fastpath_hit") - before.counter("read_fastpath_hit");
    let misses = after.counter("read_fastpath_miss") - before.counter("read_fastpath_miss");
    let abd_delta = kinds_bytes(&after, &ABD_KINDS) - kinds_bytes(&before, &ABD_KINDS);
    let hot_key_bytes = (0..objects as u64)
        .map(|o| after.bytes_of_object(o) - before.bytes_of_object(o))
        .max()
        .unwrap_or(0);
    FpRow {
        skew,
        mode,
        hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        abd_bytes_per_op: abd_delta as f64 / ops as f64,
        read_p50_ms: pct(0.50),
        read_p99_ms: pct(0.99),
        hot_key_bytes,
    }
}

fn run(objects: usize, ops: usize) -> Row {
    let cfg = RpConfig::uniform(N, F);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        1,
        SEED,
        UniformLatency::new(1_000, 20_000),
        DynOptions::default(),
    );
    // Prepopulate every key through the full protocol: the servers end up
    // holding `objects` registers each.
    for o in 0..objects as u64 {
        h.write_obj(0, ObjectId(o), o).unwrap();
    }

    let sampler = KeySampler::new(objects, KeyDistribution::Zipfian { exponent: 1.0 });
    let mut rng = StdRng::seed_from_u64(SEED ^ objects as u64);
    let before = h.world.metrics().clone();
    let client = h.client_actor(0);
    let completed_before = h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed
        .len();
    let restarts_before = h.total_restarts();

    // Measured window: Zipf-skewed ops racing two reassignment bursts that
    // each re-weight the whole shard (and refresh all `objects` registers
    // on the gaining side).
    let mut next_val = 1_000_000u64;
    let mut transfers = 0usize;
    for i in 0..ops {
        if i == ops / 3 {
            h.transfer_queued(ServerId(3), ServerId(0), Ratio::dec("0.05"))
                .unwrap();
            transfers += 1;
        }
        if i == 2 * ops / 3 {
            h.transfer_queued(ServerId(0), ServerId(3), Ratio::dec("0.05"))
                .unwrap();
            transfers += 1;
        }
        let obj = sampler.sample(&mut rng);
        if i % 2 == 0 {
            h.write_obj(0, obj, next_val).unwrap();
            next_val += 1;
        } else {
            h.read_obj(0, obj).unwrap();
        }
    }
    h.settle();
    check_linearizable_keyed(&h.history()).expect("keyed history must stay linearizable");

    let after = h.world.metrics().clone();
    let completed = &h
        .world
        .actor::<DynClient<u64>>(client)
        .expect("client")
        .driver
        .completed;
    let lat_ms: Vec<f64> = completed[completed_before..]
        .iter()
        .map(|o| (o.response - o.invoke) as f64 / 1e6)
        .collect();
    assert_eq!(lat_ms.len(), ops);

    let abd_delta = kinds_bytes(&after, &ABD_KINDS) - kinds_bytes(&before, &ABD_KINDS);
    let refresh_delta = kinds_bytes(&after, &REFRESH_KINDS) - kinds_bytes(&before, &REFRESH_KINDS);
    // Windowed like the other deltas: prepopulation traffic (one write per
    // key, near-uniform) must not dilute the measured Zipf skew.
    let hot_key_bytes = (0..objects as u64)
        .map(|o| after.bytes_of_object(o) - before.bytes_of_object(o))
        .max()
        .unwrap_or(0);
    Row {
        objects,
        measured_ops: ops,
        abd_bytes_per_op: abd_delta as f64 / ops as f64,
        mean_latency_ms: lat_ms.iter().sum::<f64>() / ops as f64,
        refresh_bytes_per_transfer: refresh_delta as f64 / transfers as f64,
        restarts: h.total_restarts() - restarts_before,
        hot_key_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_objects.json".to_string());
    let (counts, ops): (&[usize], usize) = if smoke {
        (&[15, 255], 60)
    } else {
        (&[15, 105, 1005, 10005], 300)
    };

    let rows: Vec<Row> = counts.iter().map(|&o| run(o, ops)).collect();

    // Fast-path comparison: fixed key space, skew swept, both read modes
    // on the identical synchronous schedule.
    let fp_objects = if smoke { 45 } else { 105 };
    let skews = [0.0, 1.0, 1.4];
    let fp_rows: Vec<FpRow> = skews
        .iter()
        .flat_map(|&s| {
            [ReadMode::FastPath, ReadMode::TwoPhase]
                .into_iter()
                .map(move |m| (s, m))
        })
        .map(|(s, m)| run_fastpath(s, m, fp_objects, ops))
        .collect();

    println!(
        "{:>8} {:>8} {:>16} {:>14} {:>20} {:>9}",
        "objects", "ops", "ABD bytes/op", "mean op (ms)", "refresh B/transfer", "restarts"
    );
    for r in &rows {
        println!(
            "{:>8} {:>8} {:>16.1} {:>14.3} {:>20.0} {:>9}",
            r.objects,
            r.measured_ops,
            r.abd_bytes_per_op,
            r.mean_latency_ms,
            r.refresh_bytes_per_transfer,
            r.restarts
        );
    }

    let mode_name = |m: ReadMode| match m {
        ReadMode::FastPath => "fastpath",
        ReadMode::TwoPhase => "twophase",
    };
    println!(
        "\n{:>6} {:>9} {:>9} {:>16} {:>10} {:>10} {:>14}",
        "skew", "mode", "hit rate", "ABD bytes/op", "p50 (ms)", "p99 (ms)", "hot-key bytes"
    );
    for r in &fp_rows {
        println!(
            "{:>6.1} {:>9} {:>9.2} {:>16.1} {:>10.3} {:>10.3} {:>14}",
            r.skew,
            mode_name(r.mode),
            r.hit_rate,
            r.abd_bytes_per_op,
            r.read_p50_ms,
            r.read_p99_ms,
            r.hot_key_bytes
        );
    }

    let mut json = String::from(
        "{\n  \"bench\": \"objects\",\n  \"unit\": \"abd_bytes_per_op\",\n  \"wire\": \
         \"negotiate\",\n  \"workload\": {\"dist\": \"zipf(1.0)\", \"transfers_racing\": 2},\n  \
         \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"objects\": {}, \"measured_ops\": {}, \"abd_bytes_per_op\": {:.2}, \
             \"mean_op_latency_ms\": {:.4}, \"refresh_bytes_per_transfer\": {:.0}, \
             \"restarts\": {}, \"hot_key_bytes\": {}}}{}\n",
            r.objects,
            r.measured_ops,
            r.abd_bytes_per_op,
            r.mean_latency_ms,
            r.refresh_bytes_per_transfer,
            r.restarts,
            r.hot_key_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"fastpath\": [\n");
    for (i, r) in fp_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"skew\": {:.1}, \"mode\": \"{}\", \"objects\": {}, \"measured_ops\": {}, \
             \"hit_rate\": {:.3}, \"abd_bytes_per_op\": {:.2}, \"read_p50_ms\": {:.4}, \
             \"read_p99_ms\": {:.4}, \"hot_key_bytes\": {}}}{}\n",
            r.skew,
            mode_name(r.mode),
            fp_objects,
            ops,
            r.hit_rate,
            r.abd_bytes_per_op,
            r.read_p50_ms,
            r.read_p99_ms,
            r.hot_key_bytes,
            if i + 1 < fp_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");

    // The gate: per-op ABD bytes and latency must be flat in object count.
    let bytes: Vec<f64> = rows.iter().map(|r| r.abd_bytes_per_op).collect();
    let lats: Vec<f64> = rows.iter().map(|r| r.mean_latency_ms).collect();
    let spread = |v: &[f64]| -> f64 {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    let mut ok = true;
    let byte_spread = spread(&bytes);
    if byte_spread > 1.10 {
        eprintln!("FAIL: per-op ABD bytes not flat in object count ({byte_spread:.3}x spread)");
        ok = false;
    }
    let lat_spread = spread(&lats);
    if lat_spread > 1.30 {
        eprintln!("FAIL: per-op latency not flat in object count ({lat_spread:.3}x spread)");
        ok = false;
    }
    println!(
        "spread over {}..{} objects: bytes {byte_spread:.3}x, latency {lat_spread:.3}x",
        counts.first().unwrap(),
        counts.last().unwrap()
    );

    // Fast-path gates: the one-phase read must actually fire under skew and
    // must pay for itself against the paper-literal baseline on the same
    // schedule. Smoke keeps the cheap liveness gate; the full run also pins
    // the acceptance numbers (≥30% hits at Zipf ≥ 1.0, fewer ABD bytes).
    for pair in fp_rows.chunks(2) {
        let (fast, two) = (&pair[0], &pair[1]);
        assert_eq!(
            (fast.mode, two.mode),
            (ReadMode::FastPath, ReadMode::TwoPhase)
        );
        if fast.hit_rate == 0.0 {
            eprintln!("FAIL: zero fast-path hit rate at skew {:.1}", fast.skew);
            ok = false;
        }
        if fast.skew >= 1.0 && !smoke {
            if fast.hit_rate < 0.30 {
                eprintln!(
                    "FAIL: fast-path hit rate {:.2} < 0.30 at skew {:.1}",
                    fast.hit_rate, fast.skew
                );
                ok = false;
            }
            if fast.abd_bytes_per_op >= two.abd_bytes_per_op {
                eprintln!(
                    "FAIL: fast path saved no ABD bytes at skew {:.1} ({:.1} vs {:.1})",
                    fast.skew, fast.abd_bytes_per_op, two.abd_bytes_per_op
                );
                ok = false;
            }
            if fast.read_p99_ms > two.read_p99_ms {
                eprintln!(
                    "FAIL: fast-path p99 regressed at skew {:.1} ({:.3} vs {:.3} ms)",
                    fast.skew, fast.read_p99_ms, two.read_p99_ms
                );
                ok = false;
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
