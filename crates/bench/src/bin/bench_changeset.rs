//! Standalone change-set benchmark runner: measures the hot-path
//! operations of [`ChangeSet`] against the seed's naive scan baseline and
//! emits `BENCH_changeset.json` (pass a path argument to override), so the
//! benchmark trajectory can be tracked without `cargo bench`.
//!
//! Run with: `cargo run --release --bin bench_changeset`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use std::hint::black_box;
use std::time::Instant;

use awr_bench::naive_changeset::NaiveChangeSet;
use awr_types::{Change, ChangeSet, Ratio, ServerId};

/// Median ns/iter over `samples` batches, each batch auto-calibrated to a
/// minimum duration so timer resolution never dominates.
fn time_ns<O>(mut f: impl FnMut() -> O) -> f64 {
    const MIN_BATCH_NS: u128 = 2_000_000;
    const SAMPLES: usize = 9;
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let el = t.elapsed().as_nanos();
        if el >= MIN_BATCH_NS || iters >= 1 << 28 {
            break;
        }
        let scale = (MIN_BATCH_NS as f64 / el.max(1) as f64).ceil() as u64;
        iters = iters.saturating_mul(scale.clamp(2, 1024)).min(1 << 28);
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn set_with(n: usize, extra: usize) -> ChangeSet {
    let mut c = ChangeSet::uniform_initial(n, Ratio::ONE);
    for i in 0..extra {
        let s = ServerId((i % n) as u32);
        let t = ServerId(((i + 1) % n) as u32);
        c.insert(Change::new(s, 2 + i as u64, s, Ratio::new(-1, 100)));
        c.insert(Change::new(s, 2 + i as u64, t, Ratio::new(1, 100)));
    }
    c
}

struct Row {
    name: String,
    cached_ns: f64,
    naive_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.cached_ns > 0.0 {
            self.naive_ns / self.cached_ns
        } else {
            f64::INFINITY
        }
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_changeset.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    for &extra in &[100usize, 1_000, 10_000] {
        let a = set_with(7, extra);
        let na: NaiveChangeSet = a.iter().copied().collect();
        let mut ahead = a.clone();
        ahead.insert(Change::new(
            ServerId(0),
            999_999,
            ServerId(1),
            Ratio::new(1, 10),
        ));
        let nahead: NaiveChangeSet = ahead.iter().copied().collect();

        rows.push(Row {
            name: format!("server_weight/{extra}"),
            cached_ns: time_ns(|| black_box(&a).server_weight(ServerId(0))),
            naive_ns: time_ns(|| black_box(&na).server_weight(ServerId(0))),
        });
        rows.push(Row {
            name: format!("total_weight/{extra}"),
            cached_ns: time_ns(|| black_box(&a).total_weight(7)),
            naive_ns: time_ns(|| black_box(&na).total_weight(7)),
        });
        rows.push(Row {
            name: format!("digest/{extra}"),
            cached_ns: time_ns(|| black_box(&a).digest()),
            naive_ns: time_ns(|| black_box(&na).digest()),
        });
        // Idempotent union — re-receiving a set equal to your own, the
        // quorum-round steady state. Distinct storage, so this measures the
        // digest fast path (not pointer equality).
        let equal_copy: ChangeSet = a.iter().copied().collect();
        let nequal_copy: NaiveChangeSet = a.iter().copied().collect();
        rows.push(Row {
            name: format!("union_idempotent/{extra}"),
            cached_ns: time_ns(|| black_box(&a).union(black_box(&equal_copy))),
            naive_ns: time_ns(|| black_box(&na).union(black_box(&nequal_copy))),
        });
        // Shared-storage idempotent union (clone lineage): pointer equality.
        let shared = a.clone();
        rows.push(Row {
            name: format!("union_shared/{extra}"),
            cached_ns: time_ns(|| black_box(&a).union(black_box(&shared))),
            naive_ns: time_ns(|| black_box(&na).union(black_box(&nequal_copy))),
        });
        // Superset ∪ subset: absorbing an older set needs one subset scan.
        rows.push(Row {
            name: format!("union_superset/{extra}"),
            cached_ns: time_ns(|| black_box(&ahead).union(black_box(&a))),
            naive_ns: time_ns(|| black_box(&nahead).union(black_box(&na))),
        });
        // Fresh union (ahead brings one new change).
        rows.push(Row {
            name: format!("union_fresh/{extra}"),
            cached_ns: time_ns(|| black_box(&a).union(black_box(&ahead))),
            naive_ns: time_ns(|| black_box(&na).union(black_box(&nahead))),
        });
        // Clone-onto-message (refcount bump vs deep copy).
        rows.push(Row {
            name: format!("clone/{extra}"),
            cached_ns: time_ns(|| black_box(&a).clone()),
            naive_ns: time_ns(|| black_box(&na).clone()),
        });
    }

    let mut json = String::from(
        "{\n  \"bench\": \"changeset\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cached_ns\": {:.1}, \"naive_ns\": {:.1}, \"speedup\": {:.1}}}{}\n",
            r.name,
            r.cached_ns,
            r.naive_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "operation", "cached", "naive", "speedup"
    );
    for r in &rows {
        println!(
            "{:<28} {:>9.1} ns {:>9.1} ns {:>8.1}x",
            r.name,
            r.cached_ns,
            r.naive_ns,
            r.speedup()
        );
    }
    println!("\nwrote {out_path}");
}
