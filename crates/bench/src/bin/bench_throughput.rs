//! Throughput benchmark: open-loop tail-latency knee curves on the
//! timing-wheel scheduler.
//!
//! Closed-loop harnesses (every bench before this one) re-issue on
//! completion, so offered load sags exactly when the system congests and
//! the latency-vs-throughput knee is invisible. Here an
//! [`OpenLoopHarness`] offers Poisson arrivals at a swept target rate
//! over thousands of pipelined logical clients; recorded latency is
//! *completion minus arrival*, so past the knee the queueing delay blows
//! up the p99/p99.9 tail while below it the curve stays flat at the
//! protocol round-trip. Two sweeps:
//!
//! * **wire**: delta-negotiated (`WireMode::Negotiate`) versus
//!   paper-literal full-set (`WireMode::ForceFull`) change-set wire, at
//!   converged `|C| ≈ 300`, on a shared-uplink topology. The full wire
//!   ships `C` on every phase message, saturating server uplinks an
//!   order of magnitude earlier — its knee sits far left of the delta
//!   wire's.
//! * **placement**: static versus adaptive (`LatencyGreedy`) weight
//!   placement on the five-region WAN with all clients in Virginia.
//!   Adaptive placement concentrates weight near the clients, cutting
//!   the quorum RTT — which both lowers the flat part of the curve and
//!   shifts the knee right (each pipelined client turns over faster).
//!
//! A **burst** pair contrasts Poisson with on/off bursty arrivals at the
//! same mean rate: bursts queue during "on" windows, so the tail is
//! strictly worse at equal offered load.
//!
//! The **scheduler** section replays the top-rate point (≥ 10⁶ ops) on
//! both event-queue implementations: the hierarchical timing wheel (the
//! default) and the reference `BinaryHeap`. The run must be
//! seed-for-seed identical — same ops, same arrival fingerprint, same
//! event count, same bytes — and the wheel's wall-clock time is
//! recorded against the heap's.
//!
//! Run with: `cargo run --release --bin bench_throughput [-- --smoke] [out.json]`

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use std::time::Instant;

use awr_core::RpConfig;
use awr_quorum::placement::LatencyGreedy;
use awr_sim::{
    constrained_uplink, geo_network, ArrivalSpec, Nanos, Region, SchedulerKind, MILLI, SECOND,
};
use awr_storage::{
    workload::KeyDistribution, DynOptions, OpenLoopHarness, OpenLoopSpec, OpenLoopStats,
    PlacementDriver, WireMode,
};
use awr_types::ObjectId;

const N: usize = 5;
const F: usize = 1;
const SEED: u64 = 0x0F_EED;
/// Converged change-set size for the wire sweep (what `ForceFull` ships
/// per phase message).
const C_SIZE: usize = 300;
/// Every sender's outgoing traffic shares one 4 MB/s uplink (wire sweep).
const UPLINK_BYTES_PER_SEC: u64 = 4_000_000;
const N_OBJECTS: usize = 16;
const WRITE_FRACTION: f64 = 0.3;

/// One sweep point's outcome.
struct Row {
    scenario: &'static str,
    mode: &'static str,
    rate_per_sec: f64,
    generated: u64,
    completed: u64,
    duration_s: f64,
    /// Sim time past the arrival horizon spent finishing queued ops —
    /// ~0 below the knee, huge above it.
    drain_s: f64,
    mean_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    read_p99_ns: u64,
    write_p99_ns: u64,
    /// p99 of the zipf-hottest object (key 0).
    hot_p99_ns: u64,
    max_backlog: usize,
    bytes_per_op: f64,
}

fn row(
    scenario: &'static str,
    mode: &'static str,
    rate: f64,
    duration: Nanos,
    s: &OpenLoopStats,
    last_time_ns: u64,
    bytes_sent: u64,
) -> Row {
    let all = s.all();
    Row {
        scenario,
        mode,
        rate_per_sec: rate,
        generated: s.generated,
        completed: s.completed,
        duration_s: duration as f64 / 1e9,
        drain_s: last_time_ns.saturating_sub(duration) as f64 / 1e9,
        mean_ns: all.mean(),
        p50_ns: all.quantile(0.5),
        p99_ns: all.quantile(0.99),
        p999_ns: all.quantile(0.999),
        read_p99_ns: s.reads.quantile(0.99),
        write_p99_ns: s.writes.quantile(0.99),
        hot_p99_ns: s
            .per_object
            .get(&ObjectId(0))
            .map(|h| h.quantile(0.99))
            .unwrap_or(0),
        max_backlog: s.max_backlog,
        bytes_per_op: bytes_sent as f64 / s.completed.max(1) as f64,
    }
}

fn spec(n_clients: usize, arrivals: ArrivalSpec, duration: Nanos) -> OpenLoopSpec {
    OpenLoopSpec {
        n_clients,
        n_objects: N_OBJECTS,
        dist: KeyDistribution::Zipfian { exponent: 1.0 },
        write_fraction: WRITE_FRACTION,
        arrivals,
        duration,
        per_object: true,
        seed: SEED,
    }
}

/// One wire-sweep point: shared-uplink topology, seeded converged `C`.
fn run_wire(
    wire: WireMode,
    arrivals: ArrivalSpec,
    n_clients: usize,
    duration: Nanos,
    scheduler: SchedulerKind,
) -> (OpenLoopStats, u64, u64, u64) {
    let mut h = OpenLoopHarness::build(
        RpConfig::uniform(N, F),
        &spec(n_clients, arrivals, duration),
        constrained_uplink(N + n_clients, UPLINK_BYTES_PER_SEC),
        DynOptions {
            wire,
            ..DynOptions::default()
        },
    );
    h.inner.world.set_scheduler(scheduler);
    h.seed_changes(C_SIZE);
    h.run(None, SECOND);
    let m = h.inner.world.metrics();
    let (events, bytes, last) = (m.events_processed, m.bytes_sent, m.last_time.0);
    (h.stats(), events, bytes, last)
}

/// One placement-sweep point: five-region WAN, clients in Virginia,
/// optionally ticking an adaptive placement driver.
fn run_placement(
    adaptive: bool,
    rate: f64,
    n_clients: usize,
    duration: Nanos,
) -> (OpenLoopStats, u64, u64) {
    let mut placement = Region::ALL.to_vec();
    placement.extend(std::iter::repeat_n(Region::Virginia, n_clients));
    let mut h = OpenLoopHarness::build(
        RpConfig::uniform(N, F),
        &spec(
            n_clients,
            ArrivalSpec::Poisson { rate_per_sec: rate },
            duration,
        ),
        geo_network(&placement, 0.05),
        DynOptions::default(),
    );
    if adaptive {
        let mut driver = PlacementDriver::new(LatencyGreedy::default(), h.client_actors().to_vec());
        driver.windowed = true;
        h.run(Some(&mut driver), 5 * SECOND);
    } else {
        h.run(None, 5 * SECOND);
    }
    let m = h.inner.world.metrics();
    let (bytes, last) = (m.bytes_sent, m.last_time.0);
    (h.stats(), bytes, last)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    // Sweeps are sized so the *top* rate offers >= 10^6 operations; the
    // smoke profile keeps CI under a minute.
    let (wire_rates, wire_clients, wire_dur): (&[f64], usize, Nanos) = if smoke {
        (&[400.0, 1_200.0], 32, 2 * SECOND)
    } else {
        (
            &[100.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0],
            256,
            127 * SECOND,
        )
    };
    let (place_rates, place_clients, place_dur): (&[f64], usize, Nanos) = if smoke {
        (&[200.0, 600.0], 32, 2 * SECOND)
    } else {
        (
            &[100.0, 200.0, 400.0, 800.0, 1_600.0, 3_000.0],
            128,
            336 * SECOND,
        )
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;

    // --- Wire sweep: Negotiate vs ForceFull knee. ---
    for &rate in wire_rates {
        let arrivals = ArrivalSpec::Poisson { rate_per_sec: rate };
        for (mode, wire) in [
            ("delta", WireMode::Negotiate),
            ("full", WireMode::ForceFull),
        ] {
            let (s, _, bytes, last) = run_wire(
                wire,
                arrivals,
                wire_clients,
                wire_dur,
                SchedulerKind::TimingWheel,
            );
            if s.completed != s.generated {
                eprintln!(
                    "FAIL: wire/{mode}@{rate}: {} of {} ops completed",
                    s.completed, s.generated
                );
                ok = false;
            }
            rows.push(row("wire", mode, rate, wire_dur, &s, last, bytes));
        }
    }

    // --- Burst pair: same mean rate, Poisson vs 25%-duty on/off. ---
    let burst_mean = wire_rates[wire_rates.len() / 2];
    for (mode, arrivals) in [
        (
            "poisson",
            ArrivalSpec::Poisson {
                rate_per_sec: burst_mean,
            },
        ),
        (
            "bursty",
            ArrivalSpec::Bursty {
                on_rate_per_sec: 4.0 * burst_mean,
                on_ns: 50 * MILLI,
                off_ns: 150 * MILLI,
            },
        ),
    ] {
        let (s, _, bytes, last) = run_wire(
            WireMode::Negotiate,
            arrivals,
            wire_clients,
            wire_dur,
            SchedulerKind::TimingWheel,
        );
        if s.completed != s.generated {
            eprintln!("FAIL: burst/{mode}: incomplete drain");
            ok = false;
        }
        rows.push(row("burst", mode, burst_mean, wire_dur, &s, last, bytes));
    }

    // --- Placement sweep: static vs adaptive knee. ---
    for &rate in place_rates {
        for (mode, adaptive) in [("static", false), ("adaptive", true)] {
            let (s, bytes, last) = run_placement(adaptive, rate, place_clients, place_dur);
            if s.completed != s.generated {
                eprintln!(
                    "FAIL: placement/{mode}@{rate}: {} of {} ops completed",
                    s.completed, s.generated
                );
                ok = false;
            }
            rows.push(row("placement", mode, rate, place_dur, &s, last, bytes));
        }
    }

    // --- Scheduler: wheel vs heap on the top-rate wire point. ---
    // Interleaved trials with a min-of-N summary: external interference
    // (another process, a frequency excursion) only ever *adds* wall
    // time, so the minimum of alternating runs is the robust estimate of
    // each scheduler's true cost — a single back-to-back pair is not.
    let top = *wire_rates.last().unwrap();
    let top_arrivals = ArrivalSpec::Poisson { rate_per_sec: top };
    let sched_trials = if smoke { 1 } else { 3 };
    let time_one = |kind: SchedulerKind| {
        let t0 = Instant::now();
        let (s, events, bytes, last) = run_wire(
            WireMode::Negotiate,
            top_arrivals,
            wire_clients,
            wire_dur,
            kind,
        );
        let wall = t0.elapsed().as_secs_f64();
        (wall, s, events, bytes, last)
    };
    let mut wheel_wall = f64::INFINITY;
    let mut heap_wall = f64::INFINITY;
    let mut identical = true;
    let (ww0, ws, wev, wby, wlast) = time_one(SchedulerKind::TimingWheel);
    wheel_wall = wheel_wall.min(ww0);
    let check = |who: &str, trial: usize, s: &OpenLoopStats, ev: u64, by: u64, last: u64| {
        let same = s.generated == ws.generated
            && s.completed == ws.completed
            && s.arrival_hash == ws.arrival_hash
            && ev == wev
            && by == wby
            && last == wlast;
        if !same {
            eprintln!(
                "FAIL: {who} trial {trial} diverged from the wheel baseline: \
                 (gen {}, done {}, hash {:#x}, ev {}, bytes {}, end {}) vs \
                 (gen {}, done {}, hash {:#x}, ev {}, bytes {}, end {})",
                s.generated,
                s.completed,
                s.arrival_hash,
                ev,
                by,
                last,
                ws.generated,
                ws.completed,
                ws.arrival_hash,
                wev,
                wby,
                wlast
            );
        }
        same
    };
    for trial in 0..sched_trials {
        let (hw, hs, hev, hby, hlast) = time_one(SchedulerKind::BinaryHeap);
        heap_wall = heap_wall.min(hw);
        identical &= check("heap", trial, &hs, hev, hby, hlast);
        if trial + 1 < sched_trials {
            let (ww, s, ev, by, last) = time_one(SchedulerKind::TimingWheel);
            wheel_wall = wheel_wall.min(ww);
            identical &= check("wheel", trial + 1, &s, ev, by, last);
        }
    }
    ok &= identical;

    // --- Report. ---
    println!(
        "{:<10} {:<9} {:>8} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "scenario",
        "mode",
        "rate/s",
        "ops",
        "p50 ms",
        "p99 ms",
        "p99.9 ms",
        "drain s",
        "backlog",
        "bytes/op"
    );
    for r in &rows {
        println!(
            "{:<10} {:<9} {:>8.0} {:>9} {:>10.2} {:>10.2} {:>10.2} {:>9.1} {:>9} {:>10.1}",
            r.scenario,
            r.mode,
            r.rate_per_sec,
            r.completed,
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.p999_ns as f64 / 1e6,
            r.drain_s,
            r.max_backlog,
            r.bytes_per_op
        );
    }
    println!(
        "\nscheduler: {} ops  wheel {:.2}s  heap {:.2}s  (min of {} alternating trials)  \
         speedup {:.2}x  identical: {}",
        ws.completed,
        wheel_wall,
        heap_wall,
        sched_trials,
        heap_wall / wheel_wall,
        identical
    );

    // --- JSON. ---
    let mut json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"unit\": \"ns\",\n  \"smoke\": {smoke},\n  \
         \"config\": {{\"n\": {N}, \"f\": {F}, \"c_size\": {C_SIZE}, \"n_objects\": {N_OBJECTS}, \
         \"write_fraction\": {WRITE_FRACTION}, \"uplink_bytes_per_sec\": {UPLINK_BYTES_PER_SEC}}},\n  \
         \"results\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"rate_per_sec\": {:.0}, \
             \"generated\": {}, \"completed\": {}, \"duration_s\": {:.3}, \"drain_s\": {:.3}, \
             \"mean_ns\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"read_p99_ns\": {}, \"write_p99_ns\": {}, \"hot_p99_ns\": {}, \
             \"max_backlog\": {}, \"bytes_per_op\": {:.1}}}{}\n",
            r.scenario,
            r.mode,
            r.rate_per_sec,
            r.generated,
            r.completed,
            r.duration_s,
            r.drain_s,
            r.mean_ns,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.read_p99_ns,
            r.write_p99_ns,
            r.hot_p99_ns,
            r.max_backlog,
            r.bytes_per_op,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"scheduler\": {{\"rate_per_sec\": {:.0}, \"ops\": {}, \"trials\": {}, \
         \"wheel_wall_s\": {:.3}, \"heap_wall_s\": {:.3}, \"speedup\": {:.3}, \
         \"identical\": {}}}\n}}\n",
        top,
        ws.completed,
        sched_trials,
        wheel_wall,
        heap_wall,
        heap_wall / wheel_wall,
        identical
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // --- Gates. ---
    // The full wire pays for shipping C on every phase: far more bytes
    // per op at every rate.
    for pair in rows
        .iter()
        .filter(|r| r.scenario == "wire")
        .collect::<Vec<_>>()
        .chunks(2)
    {
        let (delta, full) = (pair[0], pair[1]);
        if full.bytes_per_op < 2.0 * delta.bytes_per_op {
            eprintln!(
                "FAIL: wire@{}: full {:.0} B/op not >= 2x delta {:.0} B/op",
                delta.rate_per_sec, full.bytes_per_op, delta.bytes_per_op
            );
            ok = false;
        }
    }
    if !smoke {
        // Knee separation: at the top rate the full wire is saturated
        // (long drain, exploded tail) while the delta wire still keeps up.
        let at = |sc: &str, mode: &str, rate: f64| {
            rows.iter()
                .find(|r| r.scenario == sc && r.mode == mode && r.rate_per_sec == rate)
                .expect("row")
        };
        let (d_top, f_top) = (at("wire", "delta", top), at("wire", "full", top));
        if f_top.p99_ns < 10 * d_top.p99_ns {
            eprintln!("FAIL: full wire p99 did not explode past its knee");
            ok = false;
        }
        if d_top.drain_s > wire_dur as f64 / 1e9 {
            eprintln!("FAIL: delta wire already saturated at the top rate");
            ok = false;
        }
        // Adaptive placement beats static at every offered rate.
        for &rate in place_rates {
            let (st, ad) = (
                at("placement", "static", rate),
                at("placement", "adaptive", rate),
            );
            if ad.p99_ns >= st.p99_ns {
                eprintln!(
                    "FAIL: placement@{rate}: adaptive p99 {} >= static p99 {}",
                    ad.p99_ns, st.p99_ns
                );
                ok = false;
            }
        }
        // Bursty arrivals at the same mean rate queue harder.
        let (po, bu) = (
            at("burst", "poisson", burst_mean),
            at("burst", "bursty", burst_mean),
        );
        if bu.p99_ns <= po.p99_ns {
            eprintln!("FAIL: bursty tail not worse than poisson at equal mean rate");
            ok = false;
        }
        // The acceptance wall-clock win: the wheel beats the heap on the
        // 10^6-op top point.
        if ws.completed < 1_000_000 {
            eprintln!("FAIL: top point ran only {} ops (< 10^6)", ws.completed);
            ok = false;
        }
        if wheel_wall >= heap_wall {
            eprintln!(
                "FAIL: timing wheel ({wheel_wall:.2}s) not faster than binary heap ({heap_wall:.2}s)"
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
