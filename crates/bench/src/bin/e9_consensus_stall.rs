//! **E9 / §I, §VIII** — consensus-based reassignment stalls under
//! asynchrony; the restricted pairwise protocol does not.
//!
//! Both systems receive one reassignment request every 200 ms of virtual
//! time. An adversary (legal in an asynchronous network: it only delays)
//! slows every message *touching the leader* 1000× between t = 2 s and
//! t = 8 s. The consensus-based baseline freezes for the whole window; the
//! leaderless restricted pairwise protocol keeps completing transfers.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::print_table;
use awr_consensus::{CwrNode, SlotMsg, WeightCmd};
use awr_core::{RpConfig, RpHarness};
use awr_sim::{shared_latency, ActorId, SlowActors, UniformLatency, World, MILLI, SECOND};
use awr_types::{Ratio, ServerId, WeightMap};

const N: usize = 7;
const F: usize = 2;
const REQS: u64 = 45;
const PERIOD: u64 = 200 * MILLI;
const STALL_FROM: u64 = 2 * SECOND;
const STALL_TO: u64 = 8 * SECOND;

fn request(i: u64) -> (ServerId, ServerId, Ratio) {
    let from = ServerId((i % N as u64) as u32);
    let to = ServerId(((i + 1) % N as u64) as u32);
    (from, to, Ratio::new(1, 100))
}

fn sample_points() -> Vec<u64> {
    (0..=20).map(|i| i * 500 * MILLI).collect()
}

/// Drives a world along the timeline: submissions every PERIOD, adversary
/// toggles at the window edges, samples at each sample point. `advance`
/// runs the world for a duration; `submit` fires request `i`; `toggle`
/// engages/releases the adversary; `count` reads the completion counter.
fn drive(
    mut advance: impl FnMut(u64),
    mut submit: impl FnMut(u64),
    mut toggle: impl FnMut(bool),
    mut count: impl FnMut() -> usize,
) -> Vec<usize> {
    let samples = sample_points();
    let horizon = *samples.last().unwrap();
    let mut curve = Vec::new();
    let mut now = 0u64;
    let mut submitted = 0u64;
    let mut stalled = false;
    let mut si = 0usize;
    loop {
        // Fire everything due at `now`.
        while si < samples.len() && samples[si] <= now {
            curve.push(count());
            si += 1;
        }
        if !stalled && (STALL_FROM..STALL_TO).contains(&now) {
            toggle(true);
            stalled = true;
        }
        if stalled && now >= STALL_TO {
            toggle(false);
            stalled = false;
        }
        while submitted < REQS && (submitted + 1) * PERIOD <= now {
            submit(submitted);
            submitted += 1;
        }
        if now >= horizon {
            break;
        }
        // Next boundary.
        let mut next = horizon;
        if submitted < REQS {
            next = next.min((submitted + 1) * PERIOD);
        }
        if now < STALL_FROM {
            next = next.min(STALL_FROM);
        }
        if now < STALL_TO {
            next = next.min(STALL_TO);
        }
        if si < samples.len() {
            next = next.min(samples[si]);
        }
        debug_assert!(next > now, "driver stuck at {now}");
        advance(next - now);
        now = next;
    }
    while si < samples.len() {
        curve.push(count());
        si += 1;
    }
    curve
}

fn run_consensus() -> Vec<usize> {
    let base = UniformLatency::new(MILLI, 40 * MILLI);
    let (handle, model) = shared_latency(SlowActors::new(base, vec![], 1_000));
    let mut w: World<SlotMsg> = World::new(0xE9, model);
    for i in 0..N {
        w.add_actor(CwrNode::new(
            N,
            F,
            WeightMap::uniform(N, Ratio::ONE),
            i == 0,
        ));
    }
    let w = std::cell::RefCell::new(w);
    drive(
        |d| {
            w.borrow_mut().run_for(d);
        },
        |i| {
            let (from, to, delta) = request(i);
            w.borrow_mut()
                .with_actor_ctx::<CwrNode, _>(ActorId(0), |n, ctx| {
                    n.submit(WeightCmd { from, to, delta }, ctx);
                });
        },
        |on| {
            handle
                .lock()
                .set_slow(if on { vec![ActorId(0)] } else { vec![] });
        },
        || {
            w.borrow()
                .actor::<CwrNode>(ActorId(1))
                .unwrap()
                .applied_count()
        },
    )
}

fn run_restricted() -> Vec<usize> {
    let base = UniformLatency::new(MILLI, 40 * MILLI);
    let (handle, model) = shared_latency(SlowActors::new(base, vec![], 1_000));
    let cfg = RpConfig::uniform(N, F);
    let h = std::cell::RefCell::new(RpHarness::build(cfg, 1, 0xE9, model));
    drive(
        |d| {
            h.borrow_mut().world.run_for(d);
        },
        |i| {
            let (from, to, delta) = request(i);
            // Leaderless: each donor drives its own transfer; busy donors
            // skip (processes are sequential).
            let _ = h.borrow_mut().transfer_async(from, to, delta);
        },
        |on| {
            handle
                .lock()
                .set_slow(if on { vec![ActorId(0)] } else { vec![] });
        },
        || h.borrow().all_completed().len(),
    )
}

fn main() {
    let consensus = run_consensus();
    let restricted = run_restricted();
    let rows: Vec<Vec<String>> = sample_points()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let in_stall = (STALL_FROM..STALL_TO).contains(t);
            vec![
                format!("{:.1}{}", *t as f64 / 1e9, if in_stall { " *" } else { "" }),
                consensus[i].to_string(),
                restricted[i].to_string(),
            ]
        })
        .collect();
    print_table(
        "E9 — completed reassignments over time (* = leader-delay window)",
        &[
            "t (s)",
            "consensus-based (leader)",
            "restricted pairwise (leaderless)",
        ],
        &rows,
    );

    let at = |t: u64| sample_points().iter().position(|&x| x == t).unwrap();
    let c_in = consensus[at(7 * SECOND)].saturating_sub(consensus[at(3 * SECOND)]);
    let r_in = restricted[at(7 * SECOND)].saturating_sub(restricted[at(3 * SECOND)]);
    println!("\nprogress inside the stall window: consensus = {c_in}, restricted = {r_in}");
    assert_eq!(c_in, 0, "consensus-based should freeze during the stall");
    assert!(r_in > 0, "restricted pairwise should keep completing");
    println!(
        "Shape check: the consensus curve is flat inside the window; the\n\
         leaderless protocol keeps climbing — the operational content of\n\
         Theorems 1–2 vs Theorem 5."
    );
}
