//! **E6 / §VI** — cost of the restricted pairwise protocol: latency and
//! message complexity of `transfer` and `read_changes` as the system grows,
//! on the five-region WAN, with and without `f` crashed servers.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::{f2, print_table, Stats};
use awr_core::{RpConfig, RpHarness};
use awr_sim::five_region_wan;
use awr_types::{Ratio, ServerId};

fn run_config(n: usize, f: usize, crash: bool, seed: u64) -> Vec<String> {
    let cfg = RpConfig::uniform(n, f);
    // n servers + 1 client on the WAN.
    let mut h = RpHarness::build(cfg, 1, seed, five_region_wan(n + 1, 0.1));
    if crash {
        for i in 0..f {
            h.crash_server(ServerId((n - 1 - i) as u32));
        }
    }
    let mut transfer_ms = Vec::new();
    let mut rc_ms = Vec::new();
    let delta = Ratio::new(1, 50);
    for round in 0..10u32 {
        let from = ServerId(round % (n as u32 - 1));
        let to = ServerId((round + 1) % (n as u32 - 1));
        let t0 = h.world.now();
        if h.transfer_and_wait(from, to, delta).is_ok() {
            transfer_ms.push((h.world.now() - t0) as f64 / 1e6);
        }
        let t0 = h.world.now();
        if h.read_changes(0, to).is_ok() {
            rc_ms.push((h.world.now() - t0) as f64 / 1e6);
        }
    }
    h.settle();
    let m = h.world.metrics();
    let per_transfer_msgs =
        (m.sent_of_kind("T") + m.sent_of_kind("T_Ack")) as f64 / transfer_ms.len().max(1) as f64;
    let per_rc_msgs = (m.sent_of_kind("RC")
        + m.sent_of_kind("RC_Ack")
        + m.sent_of_kind("WC")
        + m.sent_of_kind("WC_Ack")) as f64
        / rc_ms.len().max(1) as f64;
    let t = Stats::of(&transfer_ms);
    let r = Stats::of(&rc_ms);
    vec![
        format!("n={n} f={f}{}", if crash { " (f crashed)" } else { "" }),
        f2(t.mean),
        f2(t.p99),
        f2(per_transfer_msgs),
        f2(r.mean),
        f2(r.p99),
        f2(per_rc_msgs),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for &(n, f) in &[(4usize, 1usize), (7, 2), (10, 3), (13, 4), (19, 6), (25, 8)] {
        rows.push(run_config(n, f, false, 42));
    }
    for &(n, f) in &[(7usize, 2usize), (13, 4)] {
        rows.push(run_config(n, f, true, 42));
    }
    print_table(
        "E6 — restricted pairwise protocol cost on the 5-region WAN",
        &[
            "system",
            "transfer mean ms",
            "transfer p99 ms",
            "msgs/transfer",
            "read_changes mean ms",
            "read_changes p99 ms",
            "msgs/read_changes",
        ],
        &rows,
    );
    println!(
        "\nShape check: transfer latency is ~2 one-way delays (RB + ack wave)\n\
         and independent of f; message cost grows quadratically with n\n\
         (eager-relay reliable broadcast); crashes of f servers do not block\n\
         liveness (RP-Liveness, Theorem 4)."
    );
}
