//! **E7 / §VII + §I motivation** — dynamic-weighted atomic storage vs the
//! static baselines on a five-region WAN with a mid-run regime shift.
//!
//! Five servers, one per region; three clients (two Virginia, one Ireland).
//! Weights follow the WHEAT pattern: two "heavy" replicas near the client
//! mass (Virginia + Ireland) so two-server quorums exist. Phase A: healthy
//! network. Phase B: the Virginia replica degrades 150×. The static systems
//! keep their quorum structure; the dynamic system's monitor re-plans
//! weights via pairwise transfers (heavy role moves to Sao Paulo).
//!
//! Expected shape (WHEAT + §VII): static-WMQS beats MQS before the
//! shift; after the shift the dynamic system recovers most of the gap while
//! static-WMQS falls back to MQS-like latency.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::{f2, print_table, Stats};
use awr_core::RpConfig;
use awr_monitor::plan_transfers;
use awr_sim::{shared_latency, ActorId, SlowActors, World};
use awr_storage::{AbdClient, AbdMsg, AbdServer, DynOptions, QuorumRule, StorageHarness};
use awr_types::{ClientId, ProcessId, WeightMap};

const N: usize = 5;
const CLIENTS: usize = 3;
const OPS_PER_PHASE: usize = 30;
const SLOW_FACTOR: u64 = 150;

/// Client placement: actor ids n..n+3 map to regions 0 (VA), 0 (VA), 1 (IE)
/// — the client mass sits on the Atlantic, as in the WHEAT evaluation.
fn wan() -> awr_sim::WanMatrix {
    let mut placement: Vec<usize> = (0..N).collect(); // one server per region
    placement.extend([0, 0, 1]); // clients
    awr_sim::WanMatrix::new(awr_sim::five_region_matrix(), placement, 0.08)
}

/// WHEAT-style weights: heavy on Virginia & Ireland (the client mass),
/// floor-respecting for f = 1 (floor = 5/8 = 0.625).
fn initial_weights() -> WeightMap {
    WeightMap::dec(&["1.55", "1.55", "0.63", "0.64", "0.63"])
}

/// Post-shift targets: the heavy role moves from Virginia to São Paulo
/// (the next-best replica for the Atlantic client mass).
fn shifted_targets() -> WeightMap {
    WeightMap::dec(&["0.63", "1.55", "1.56", "0.63", "0.63"])
}

fn run_static(rule: QuorumRule, seed: u64) -> (f64, f64) {
    let (handle, model) = shared_latency(SlowActors::new(wan(), vec![], SLOW_FACTOR));
    let mut w: World<AbdMsg<u64>> = World::new(seed, model);
    for _ in 0..N {
        w.add_actor(AbdServer::<u64>::new());
    }
    let clients: Vec<ActorId> = (0..CLIENTS)
        .map(|c| {
            w.add_actor(AbdClient::<u64>::new(
                ProcessId::Client(ClientId(c as u32)),
                N,
                rule.clone(),
            ))
        })
        .collect();

    let run_phase = |w: &mut World<AbdMsg<u64>>, base: u64| -> f64 {
        let mut lats = Vec::new();
        for i in 0..OPS_PER_PHASE {
            let cid = clients[i % CLIENTS];
            let before = w.actor::<AbdClient<u64>>(cid).unwrap().completed.len();
            let write = i % 2 == 0;
            w.with_actor_ctx::<AbdClient<u64>, _>(cid, |c, ctx| {
                if write {
                    c.begin_write(base + i as u64, ctx);
                } else {
                    c.begin_read(ctx);
                }
            });
            let t0 = w.now();
            w.run_until(|w| w.actor::<AbdClient<u64>>(cid).unwrap().completed.len() > before);
            lats.push((w.now() - t0) as f64 / 1e6);
        }
        Stats::of(&lats).mean
    };

    let a = run_phase(&mut w, 0);
    handle.lock().set_slow(vec![ActorId(0)]); // Virginia degrades
    let b = run_phase(&mut w, 1000);
    (a, b)
}

fn run_dynamic(seed: u64) -> (f64, f64, String) {
    let cfg = RpConfig::new(1, initial_weights()).expect("valid WHEAT weights");
    let (handle, model) = shared_latency(SlowActors::new(wan(), vec![], SLOW_FACTOR));
    let mut h: StorageHarness<u64> =
        StorageHarness::build(cfg.clone(), CLIENTS, seed, model, DynOptions::default());

    let run_phase = |h: &mut StorageHarness<u64>, base: u64| -> f64 {
        let mut lats = Vec::new();
        for i in 0..OPS_PER_PHASE {
            let k = i % CLIENTS;
            let t0 = h.world.now();
            let ok = if i % 2 == 0 {
                h.write(k, base + i as u64).is_ok()
            } else {
                h.read(k).is_ok()
            };
            if ok {
                lats.push((h.world.now() - t0) as f64 / 1e6);
            }
        }
        Stats::of(&lats).mean
    };

    let a = run_phase(&mut h, 0);
    handle.lock().set_slow(vec![ActorId(0)]);

    // Monitoring detects the degradation; the planner emits C1-respecting
    // pairwise transfers toward the post-shift targets.
    let plan = plan_transfers(&initial_weights(), &shifted_targets());
    let plan_str = plan
        .iter()
        .map(|t| format!("{}→{}:{}", t.from, t.to, t.delta))
        .collect::<Vec<_>>()
        .join(", ");
    for t in &plan {
        let _ = h.transfer_and_wait(t.from, t.to, t.delta);
    }
    h.settle();

    let b = run_phase(&mut h, 1000);
    (a, b, plan_str)
}

fn main() {
    let seed = 0xE7;
    let (mqs_a, mqs_b) = run_static(QuorumRule::majority(N), seed);
    let (wmqs_a, wmqs_b) = run_static(QuorumRule::weighted(initial_weights()), seed);
    let (dyn_a, dyn_b, plan) = run_dynamic(seed);

    print_table(
        "E7 — read/write latency (virtual ms), 5-region WAN, Virginia degrades 150× mid-run",
        &["system", "phase A (healthy)", "phase B (shifted)", "B/A"],
        &[
            vec![
                "MQS ABD (majority)".into(),
                f2(mqs_a),
                f2(mqs_b),
                f2(mqs_b / mqs_a),
            ],
            vec![
                "static WMQS ABD (WHEAT weights)".into(),
                f2(wmqs_a),
                f2(wmqs_b),
                f2(wmqs_b / wmqs_a),
            ],
            vec![
                "dynamic-weighted ABD (this paper)".into(),
                f2(dyn_a),
                f2(dyn_b),
                f2(dyn_b / dyn_a),
            ],
        ],
    );
    println!(
        "\ninitial weights: {} → post-shift plan: {plan}",
        initial_weights()
    );
    println!(
        "\nShape check: static-WMQS < MQS in phase A (two-server quorums near\n\
         the clients); after the shift the dynamic system re-weights São\n\
         Paulo and recovers, while static-WMQS loses its advantage."
    );

    assert!(
        wmqs_a < mqs_a,
        "weighted quorums should beat majority in the healthy phase"
    );
    assert!(
        dyn_b < wmqs_b,
        "dynamic should beat static WMQS after the shift"
    );
}
