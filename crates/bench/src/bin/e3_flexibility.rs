//! **E3 / §V.C** — flexibility limits of the restricted problems when
//! servers fail or become slow.
//!
//! Reproduces the discussion instance: n = 7, f = 2, weights
//! (1.6, 1.4, 0.8, 0.8, 0.8, 0.8, 0.8); s1 and s2 are failed/slow. Under
//! *unrestricted* reassignment the others could regain small quorums; under
//! pairwise reassignment only redistribution is possible; under restricted
//! pairwise reassignment the slow servers' weight is stuck entirely —
//! the smallest live quorum is 5 and nothing can shrink it.

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use std::collections::BTreeSet;

use awr_bench::print_table;
use awr_quorum::{
    rp_floor, rp_integrity_holds, smallest_quorum_avoiding, WeightedMajorityQuorumSystem,
};
use awr_types::{Ratio, ServerId, WeightMap};

fn min_live_quorum(w: &WeightMap, threshold_total: Ratio, dead: &BTreeSet<ServerId>) -> String {
    let qs = WeightedMajorityQuorumSystem::with_threshold_total(w.clone(), threshold_total);
    match smallest_quorum_avoiding(&qs, dead) {
        Some(k) => k.to_string(),
        None => "unavailable".to_string(),
    }
}

fn main() {
    let w0 = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
    let total = w0.total();
    let (n, f) = (7usize, 2usize);
    let floor = rp_floor(total, n, f);
    let dead: BTreeSet<ServerId> = [ServerId(0), ServerId(1)].into();

    println!("§V.C flexibility comparison — s1, s2 failed/slow");
    println!("initial weights: {w0}, floor = {floor}");

    let mut rows = Vec::new();

    // Baseline: no reassignment at all.
    rows.push(vec![
        "no reassignment".into(),
        format!("{w0}"),
        min_live_quorum(&w0, total, &dead),
        "—".into(),
    ]);

    // Unrestricted weight reassignment: boost the live servers
    // (approach II of §V.C). E.g. give each live server +0.56: the five
    // live servers then hold 6.8 of total 9.8 > 4.9.
    let mut w_unres = w0.clone();
    for i in 2..7 {
        w_unres.add(ServerId(i), Ratio::dec("0.56"));
    }
    let new_total = w_unres.total();
    rows.push(vec![
        "unrestricted (boost live servers)".into(),
        format!("{w_unres}"),
        min_live_quorum(&w_unres, new_total, &dead),
        format!("total grew to {new_total}"),
    ]);

    // Pairwise: total fixed, but approach I of §V.C works — *any* server
    // may transfer a failed server's weight away (no C1 yet):
    // transfer(s1, s3, 0.7) and transfer(s2, s4, 0.6) by live servers.
    let mut w_pair = w0.clone();
    w_pair.add(ServerId(0), Ratio::dec("-0.7"));
    w_pair.add(ServerId(2), Ratio::dec("0.7"));
    w_pair.add(ServerId(1), Ratio::dec("-0.6"));
    w_pair.add(ServerId(3), Ratio::dec("0.6"));
    rows.push(vec![
        "pairwise (drain the failed servers)".into(),
        format!("{w_pair}"),
        min_live_quorum(&w_pair, total, &dead),
        "approach I: others move the dead weight".into(),
    ]);

    // Restricted pairwise: additionally every server must stay above the
    // floor (0.7): s7 can donate at most 0.8 − 0.7 − ε. The live servers
    // can barely move anything.
    let max_donation = Ratio::dec("0.8") - floor; // 0.1, and strictly less
    let mut w_rp = w0.clone();
    w_rp.add(ServerId(6), -(max_donation - Ratio::new(1, 100)));
    w_rp.add(ServerId(2), max_donation - Ratio::new(1, 100));
    assert!(rp_integrity_holds(&w_rp, floor));
    rows.push(vec![
        "restricted pairwise (max legal shuffle)".into(),
        format!("{w_rp}"),
        min_live_quorum(&w_rp, total, &dead),
        format!("donors capped at {} above floor", max_donation),
    ]);

    print_table(
        "E3 — smallest live quorum under each problem variant",
        &["variant", "weights", "min live quorum", "note"],
        &rows,
    );

    println!(
        "\nPaper's claim (§V.C): with s1, s2 slow the smallest quorum is 5 and\n\
         restricted pairwise reassignment cannot shrink it — confirmed above."
    );
}
