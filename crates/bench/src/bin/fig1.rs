//! **E1 / Figure 1 + Example 2** — the paper's worked example, executed on
//! the real protocol over the simulated asynchronous network.
//!
//! Seven servers, `f = 2`, uniform initial weight 1 (floor = 0.7, quorum
//! threshold 3.5, initial minimal quorum size 4). Servers s4, s5, s6 each
//! transfer 0.25 to s1, s2, s3, after which the *minority* {s1, s2, s3}
//! carries a quorum. Two further transfers by s6 and s7 would breach
//! RP-Integrity and complete null (the red box of Fig. 1).

// stdout is this target's interface; exempt from the workspace print lint.
#![allow(clippy::print_stdout)]

use awr_bench::print_table;
use awr_core::{audit_transfers, RpConfig, RpHarness};
use awr_quorum::{QuorumSystem, WeightedMajorityQuorumSystem};
use awr_sim::UniformLatency;
use awr_types::{Ratio, ServerId};

fn main() {
    let cfg = RpConfig::uniform(7, 2);
    println!("Figure 1 replay — n = 7, f = 2, uniform initial weight 1");
    println!(
        "floor W_S0/(2(n-f)) = {}, quorum threshold W_S0/2 = {}",
        cfg.floor(),
        cfg.quorum_threshold()
    );

    let mut h = RpHarness::build(cfg.clone(), 1, 0xF16, UniformLatency::new(1_000, 80_000));
    let mut rows = Vec::new();

    let mut record = |h: &RpHarness, label: String, effective: &str| {
        let w = h.weights_seen_by(ServerId(0));
        let qs = WeightedMajorityQuorumSystem::with_threshold_total(w.clone(), Ratio::integer(7));
        rows.push(vec![
            label,
            effective.to_string(),
            format!("{w}"),
            qs.min_quorum_size().to_string(),
        ]);
    };

    record(&h, "initial".into(), "—");

    // The three effective transfers of Fig. 1.
    for (from, to) in [(3u32, 0u32), (4, 1), (5, 2)] {
        let out = h
            .transfer_and_wait(ServerId(from), ServerId(to), Ratio::dec("0.25"))
            .expect("transfer");
        h.settle();
        record(
            &h,
            format!("transfer(s{}, s{}, 0.25)", from + 1, to + 1),
            if out.is_effective() {
                "effective"
            } else {
                "null"
            },
        );
    }

    // The two RP-Integrity-violating attempts (red box).
    for (from, to, d) in [(5u32, 0u32, "0.1"), (6, 1, "0.4")] {
        let out = h
            .transfer_and_wait(ServerId(from), ServerId(to), Ratio::dec(d))
            .expect("transfer");
        h.settle();
        record(
            &h,
            format!("transfer(s{}, s{}, {d})", from + 1, to + 1),
            if out.is_effective() {
                "effective"
            } else {
                "null (RP-Integrity)"
            },
        );
    }

    print_table(
        "Fig. 1 — weight trajectory and minimal quorum size",
        &["step", "outcome", "weights [s1..s7]", "min quorum"],
        &rows,
    );

    // Audit the whole execution.
    let report = audit_transfers(&cfg, &h.all_completed());
    println!(
        "\naudit: {} effective, {} null, violations: {}",
        report.effective,
        report.null,
        report.violations.len()
    );
    assert!(report.is_clean(), "audit failed: {:?}", report.violations);

    // Check the Fig. 1 claims explicitly.
    let w = h.weights_seen_by(ServerId(0));
    let qs = WeightedMajorityQuorumSystem::with_threshold_total(w.clone(), Ratio::integer(7));
    let minority: std::collections::BTreeSet<ServerId> =
        [ServerId(0), ServerId(1), ServerId(2)].into();
    assert!(qs.is_quorum(&minority), "{{s1,s2,s3}} must form a quorum");
    println!("claim check: {{s1, s2, s3}} is a quorum under the final weights ✓");
    println!("messages: {}", h.world.metrics().summary());
}
