//! Seed-for-seed equivalence of the `LatencyModel` and `NetworkModel`
//! paths: wrapping any latency model in [`BandwidthLinks`] with infinite
//! bandwidth must reproduce the *exact* schedule — same event count, same
//! byte accounting, same virtual end time, same protocol outcomes — because
//! the blanket `NetworkModel` impl charges zero transmission and the
//! wrapper draws no extra randomness. This is the contract that lets every
//! pre-existing scenario, test, and bench keep its meaning now that the
//! simulator is size-aware.

use awr::core::{RpConfig, RpHarness};
use awr::sim::{
    BandwidthLinks, BandwidthMatrix, ConstantLatency, Metrics, NetworkModel, ReceiveDiscipline,
    UniformLatency,
};
use awr::storage::{DynOptions, StorageHarness};
use awr::types::{Ratio, ServerId};

fn s(i: u32) -> ServerId {
    ServerId(i)
}

/// The observable fingerprint of a run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    sent: u64,
    bytes: u64,
    end_nanos: u64,
    reads: Vec<Option<u64>>,
}

fn storage_scenario(seed: u64, network: impl NetworkModel + 'static) -> Fingerprint {
    let cfg = RpConfig::uniform(5, 1);
    let mut h: StorageHarness<u64> =
        StorageHarness::build(cfg, 2, seed, network, DynOptions::default());
    let mut reads = Vec::new();
    h.write(0, 7).unwrap();
    h.transfer_and_wait(s(3), s(0), Ratio::dec("0.1")).unwrap();
    reads.push(h.read(1).unwrap().0);
    h.transfer_async(s(4), s(1), Ratio::dec("0.1")).unwrap();
    h.write(1, 8).unwrap();
    reads.push(h.read(0).unwrap().0);
    h.settle();
    let m: &Metrics = h.world.metrics();
    Fingerprint {
        events: m.events_processed,
        sent: m.messages_sent,
        bytes: m.bytes_sent,
        end_nanos: m.last_time.nanos(),
        reads,
    }
}

#[test]
fn constant_latency_schedule_is_identical_under_infinite_bandwidth() {
    for seed in 0..5 {
        let plain = storage_scenario(seed, ConstantLatency(25_000));
        let wrapped = storage_scenario(
            seed,
            BandwidthLinks::new(ConstantLatency(25_000), BandwidthMatrix::unlimited(7)),
        );
        assert_eq!(plain, wrapped, "seed {seed}: schedules diverged");
    }
}

#[test]
fn uniform_latency_schedule_is_identical_under_infinite_bandwidth() {
    for seed in 0..5 {
        let plain = storage_scenario(seed, UniformLatency::new(1_000, 50_000));
        let wrapped = storage_scenario(
            seed,
            BandwidthLinks::new(
                UniformLatency::new(1_000, 50_000),
                BandwidthMatrix::unlimited(7),
            ),
        );
        assert_eq!(plain, wrapped, "seed {seed}: schedules diverged");
    }
}

#[test]
fn receive_scheduling_off_is_schedule_identical_under_finite_bandwidth() {
    // The off-case equivalence pin on the full protocol: the default
    // (receive scheduling off) and an explicit `Off` must replay the same
    // finite-bandwidth schedule bit for bit.
    for seed in 0..3 {
        let default_net = storage_scenario(
            seed,
            BandwidthLinks::new(
                UniformLatency::new(1_000, 50_000),
                BandwidthMatrix::uniform(7, 1_000_000),
            ),
        );
        let explicit_off = storage_scenario(
            seed,
            BandwidthLinks::new(
                UniformLatency::new(1_000, 50_000),
                BandwidthMatrix::uniform(7, 1_000_000),
            )
            .with_receive_discipline(ReceiveDiscipline::Off),
        );
        assert_eq!(default_net, explicit_off, "seed {seed}: off-case diverged");
    }
}

#[test]
fn receive_scheduling_is_a_no_op_under_infinite_bandwidth() {
    // With zero transmission time there is nothing to drain: PerDownlink
    // must reproduce the plain latency schedule exactly, which pins the
    // on-path's interaction with the blanket impl.
    for seed in 0..3 {
        let plain = storage_scenario(seed, UniformLatency::new(1_000, 50_000));
        let rx = storage_scenario(
            seed,
            BandwidthLinks::new(
                UniformLatency::new(1_000, 50_000),
                BandwidthMatrix::unlimited(7),
            )
            .with_receive_discipline(ReceiveDiscipline::PerDownlink),
        );
        assert_eq!(plain, rx, "seed {seed}: schedules diverged");
    }
}

#[test]
fn receive_scheduling_stretches_ack_convergence() {
    // Under PerDownlink the quorum's worth of acks converging on the
    // client drain one at a time: the run gets longer, the outcome stays
    // the same.
    let off = storage_scenario(
        5,
        BandwidthLinks::new(
            ConstantLatency(25_000),
            BandwidthMatrix::uniform(7, 200_000), // 200 KB/s: acks cost ms
        ),
    );
    let on = storage_scenario(
        5,
        BandwidthLinks::new(
            ConstantLatency(25_000),
            BandwidthMatrix::uniform(7, 200_000),
        )
        .with_receive_discipline(ReceiveDiscipline::PerDownlink),
    );
    assert_eq!(off.reads, on.reads, "outcomes must agree");
    assert!(
        on.end_nanos > off.end_nanos,
        "downlink draining must stretch the run ({} vs {})",
        on.end_nanos,
        off.end_nanos
    );
}

#[test]
fn finite_bandwidth_changes_the_schedule_but_not_the_outcome() {
    // Sanity check of the flip side: a constrained network stretches the
    // run (the bytes now cost time) without changing what the protocol
    // computes. (Message/byte totals legitimately differ — a different
    // schedule means different stale-read restarts and re-polls.)
    let plain = storage_scenario(3, UniformLatency::new(1_000, 50_000));
    let constrained = storage_scenario(
        3,
        BandwidthLinks::new(
            UniformLatency::new(1_000, 50_000),
            BandwidthMatrix::uniform(7, 100_000), // 100 KB/s: bytes hurt
        ),
    );
    assert_eq!(plain.reads, constrained.reads);
    assert!(
        constrained.end_nanos > plain.end_nanos,
        "transmission time must stretch the run ({} vs {})",
        constrained.end_nanos,
        plain.end_nanos
    );
}

#[test]
fn rp_harness_schedule_is_identical_under_infinite_bandwidth() {
    let run = |network: Box<dyn NetworkModel>| {
        let cfg = RpConfig::uniform(7, 2);
        let mut h = RpHarness::build(cfg, 1, 11, network);
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.2")).unwrap();
        h.transfer_queued(s(4), s(1), Ratio::dec("0.1")).unwrap();
        h.transfer_queued(s(4), s(2), Ratio::dec("0.1")).unwrap();
        h.settle();
        let rc = h.read_changes(0, s(0)).unwrap();
        (
            h.world.metrics().events_processed,
            h.world.metrics().bytes_sent,
            h.world.now().nanos(),
            rc.weight(),
        )
    };
    let plain = run(Box::new(UniformLatency::new(1_000, 80_000)));
    let wrapped = run(Box::new(BandwidthLinks::new(
        UniformLatency::new(1_000, 80_000),
        BandwidthMatrix::unlimited(8),
    )));
    assert_eq!(plain, wrapped);
    assert_eq!(plain.3, Ratio::dec("1.2"));
}
