//! Seed-pinned single-object replay: the keyed-object refactor must be
//! invisible to single-object deployments.
//!
//! The constants below were captured by running the *pre-refactor* engine
//! (one hardcoded `TaggedValue` register per server, scalar `RefreshR`
//! tags) on the shared mixed workload. The refactored engine — keyed
//! register maps, object ids on every ABD phase, map-valued refresh legs —
//! must replay the exact same schedules when driven through the
//! single-object entry points: same operations at the same virtual-time
//! stamps, same restart counts, same final registers and weights, in both
//! wire modes. Any divergence (an extra message, a reordered send, a
//! changed RNG draw) shows up as a checksum mismatch.

use awr::core::RpConfig;
use awr::sim::UniformLatency;
use awr::storage::workload::{run_mixed_workload, WorkloadSpec};
use awr::storage::{DynOptions, DynServer, OpKind, ReadMode, StorageHarness, WireMode};
use awr::types::{ObjectId, ServerId};

/// One recorded op: (client, is_write, value, invoke ns, response ns).
type OpRec = (usize, bool, Option<u64>, u64, u64);

struct Pinned {
    seed: u64,
    ops: usize,
    restarts: u64,
    /// FNV-1a-style fold over the sorted op records (see [`checksum`]).
    checksum: u64,
    /// Converged final register on every server: (tag.ts, value).
    reg: (u64, Option<u64>),
    /// Final per-server weights (decimal strings).
    weights: [&'static str; 7],
}

/// Captured from the pre-refactor engine (commit before the object layer),
/// `RpConfig::uniform(7, 2)`, 3 clients, `UniformLatency::new(1_000,
/// 50_000)`, `WorkloadSpec::default()`, world seed = workload seed. The
/// two wire modes happened to produce identical schedules on this
/// workload; both are replayed against the same pins.
const PINNED: &[Pinned] = &[
    Pinned {
        seed: 0,
        ops: 34,
        restarts: 10,
        checksum: 0xe4255f968a272507,
        reg: (12, Some(19)),
        weights: ["1", "1", "0.95", "1", "1", "1", "1.05"],
    },
    Pinned {
        seed: 1,
        ops: 37,
        restarts: 9,
        checksum: 0x5a4ff5e9dba508aa,
        reg: (13, Some(15)),
        weights: ["1", "1", "1", "1", "1.05", "0.95", "1"],
    },
    Pinned {
        seed: 2,
        ops: 40,
        restarts: 11,
        checksum: 0x279416352aadb31f,
        reg: (17, Some(22)),
        weights: ["0.95", "1.05", "1", "0.95", "1", "1", "1.05"],
    },
];

fn checksum(ops: &[OpRec]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let fold = |x: u64, h: &mut u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x100000001b3);
    };
    for &(c, w, v, i, r) in ops {
        fold(c as u64, &mut h);
        fold(w as u64, &mut h);
        fold(v.unwrap_or(u64::MAX), &mut h);
        fold(i, &mut h);
        fold(r, &mut h);
    }
    h
}

/// (sorted op records, restarts, per-server (tag.ts, value), weights).
type RunOutcome = (Vec<OpRec>, u64, Vec<(u64, Option<u64>)>, Vec<String>);

fn run(seed: u64, wire: WireMode) -> RunOutcome {
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(7, 2),
        3,
        seed,
        UniformLatency::new(1_000, 50_000),
        DynOptions {
            wire,
            // The pinned checksums capture the pre-fast-path engine, whose
            // reads always ran both phases; `tests/read_fastpath.rs` owns
            // the FastPath-vs-TwoPhase equivalence.
            read: ReadMode::TwoPhase,
            ..DynOptions::default()
        },
    );
    let stats = run_mixed_workload(&mut h, 3, &WorkloadSpec::default(), seed);
    let hist = h.history();
    let mut ops: Vec<OpRec> = hist
        .ops
        .iter()
        .map(|o| {
            assert_eq!(o.obj, ObjectId::DEFAULT, "single-object mode leaked a key");
            let (w, v) = match &o.kind {
                OpKind::Read(v) => (false, *v),
                OpKind::Write(v) => (true, Some(*v)),
            };
            (o.client, w, v, o.invoke.nanos(), o.response.nanos())
        })
        .collect();
    ops.sort();
    let mut regs = Vec::new();
    let mut weights = Vec::new();
    for i in 0..7u32 {
        let srv = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(ServerId(i)))
            .unwrap();
        let reg = srv.register();
        regs.push((reg.tag.ts, reg.value));
        weights.push(srv.weight().to_string());
    }
    (ops, stats.restarts, regs, weights)
}

#[test]
fn single_object_mode_replays_pre_refactor_schedule() {
    for pin in PINNED {
        for wire in [WireMode::Negotiate, WireMode::ForceFull] {
            let (ops, restarts, regs, weights) = run(pin.seed, wire);
            assert_eq!(
                ops.len(),
                pin.ops,
                "seed {} {wire:?}: op count diverged",
                pin.seed
            );
            assert_eq!(
                restarts, pin.restarts,
                "seed {} {wire:?}: restart count diverged",
                pin.seed
            );
            assert_eq!(
                checksum(&ops),
                pin.checksum,
                "seed {} {wire:?}: schedule checksum diverged from the \
                 pre-refactor capture",
                pin.seed
            );
            for (s, reg) in regs.iter().enumerate() {
                assert_eq!(
                    reg, &pin.reg,
                    "seed {} {wire:?}: register on s{s}",
                    pin.seed
                );
            }
            let want: Vec<String> = pin.weights.iter().map(|w| w.to_string()).collect();
            assert_eq!(weights, want, "seed {} {wire:?}: weights", pin.seed);
        }
    }
}

#[test]
fn seed0_schedule_is_bit_for_bit() {
    // The full pre-refactor op list for seed 0 — checksum failures above
    // point here for a readable diff.
    let expected: Vec<OpRec> = vec![
        (0, false, Some(11), 1050000, 1149026),
        (0, false, Some(13), 1350000, 1447343),
        (0, false, Some(17), 1950000, 2092409),
        (0, false, Some(18), 2100000, 2191696),
        (0, false, Some(18), 2400000, 2519531),
        (0, false, Some(19), 2700000, 2822931),
        (0, false, Some(19), 2850000, 2958626),
        (0, true, Some(1), 0, 124837),
        (0, true, Some(4), 150000, 245985),
        (0, true, Some(6), 300000, 421088),
        (0, true, Some(10), 900000, 1049195),
        (0, true, Some(12), 1200000, 1313507),
        (0, true, Some(19), 2550000, 2655149),
        (1, false, Some(8), 450000, 652926),
        (1, false, Some(18), 2400000, 2496915),
        (1, false, Some(18), 2550000, 2659219),
        (1, true, Some(2), 0, 77641),
        (1, true, Some(5), 150000, 242004),
        (1, true, Some(7), 300000, 401833),
        (1, true, Some(9), 750000, 849306),
        (1, true, Some(13), 1200000, 1278704),
        (1, true, Some(14), 1350000, 1449959),
        (1, true, Some(16), 1800000, 1940750),
        (2, false, Some(11), 1050000, 1156152),
        (2, false, Some(13), 1350000, 1456085),
        (2, false, Some(18), 2250000, 2356289),
        (2, false, Some(18), 2400000, 2510165),
        (2, false, Some(19), 2700000, 2885019),
        (2, true, Some(3), 0, 92977),
        (2, true, Some(8), 450000, 616259),
        (2, true, Some(11), 900000, 1022910),
        (2, true, Some(15), 1500000, 1610684),
        (2, true, Some(17), 1800000, 1940982),
        (2, true, Some(18), 1950000, 2058551),
    ];
    let (ops, _, _, _) = run(0, WireMode::Negotiate);
    assert_eq!(ops, expected);
}
