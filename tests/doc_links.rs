//! Checks that every relative markdown link in the repository's
//! documentation (`README.md`, `docs/*.md`, `ROADMAP.md`) points at a
//! file that exists, so the docs layer can't rot silently as the tree
//! moves.

use std::path::{Path, PathBuf};

/// Extracts `](target)` link targets from markdown source, skipping
/// fenced code blocks.
fn link_targets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in md.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("](") {
            rest = &rest[i + 2..];
            let Some(end) = rest.find(')') else { break };
            out.push(rest[..end].to_string());
            rest = &rest[end..];
        }
    }
    out
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn relative_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = vec![root.join("README.md"), root.join("ROADMAP.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(files.len() >= 7, "expected README, ROADMAP and docs/*.md");

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let md = std::fs::read_to_string(file).expect("read markdown");
        let dir = file.parent().expect("file dir");
        for target in link_targets(&md) {
            if is_external(&target) || target.is_empty() {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(checked > 0, "no relative links found — extractor broken?");
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
}
