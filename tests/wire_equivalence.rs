//! Wire-equivalence tests: the delta-negotiated wire
//! ([`awr::storage::WireMode::Negotiate`]) must be *observably identical*
//! to the paper-literal full-set wire ([`awr::storage::WireMode::ForceFull`])
//! — same operation results, same final registers, same converged change
//! sets, both linearizable — while shipping asymptotically fewer bytes.
//!
//! The comparison runs the same seeded scenario once per mode. Client
//! operations are issued sequentially (each runs to completion before the
//! next starts) so that the schedule divergence the extra negotiation legs
//! introduce cannot change which of two concurrent writes "wins": with a
//! sequential workload, linearizability pins every read's result, and any
//! deviation between the modes is a real protocol difference, not noise.
//! Transfers still overlap the client ops freely, which is what forces the
//! stale-`C` rejections the negotiation exists to serve.

use std::collections::BTreeSet;

use awr::core::{audit_transfers, RpConfig};
use awr::sim::UniformLatency;
use awr::storage::{check_linearizable, DynOptions, DynServer, StorageHarness, WireMode};
use awr::types::{Change, Ratio, ServerId};

fn s(i: u32) -> ServerId {
    ServerId(i)
}

/// Everything observable about one scenario run.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    /// Per completed client op: (client, is_write, value read/written).
    ops: Vec<(usize, bool, Option<u64>)>,
    /// Final register value per server.
    registers: Vec<Option<u64>>,
    /// Final change set per server, as plain sets of changes.
    change_sets: Vec<BTreeSet<Change>>,
}

/// A deterministic mixed scenario: interleaved transfers (sync and async)
/// with sequential reads and writes from three clients. Donors and deltas
/// are chosen so every transfer passes the C2 check regardless of message
/// timing (weight only ever helps), keeping the outcome schedule-independent.
fn run_scenario(seed: u64, wire: WireMode) -> (Observation, u64, u64) {
    let cfg = RpConfig::uniform(7, 2);
    let n = cfg.n;
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg,
        3,
        seed,
        UniformLatency::new(1_000, 50_000),
        DynOptions {
            wire,
            ..DynOptions::default()
        },
    );
    let mut ops = Vec::new();
    let mut record = |client: usize, kind: (bool, Option<u64>)| {
        ops.push((client, kind.0, kind.1));
    };

    h.write(0, 10).unwrap();
    record(0, (true, Some(10)));
    // floor = 7/10; donors at 1.0 give 0.1 twice: 0.9 > 0.1 + 0.7 holds
    // even if no credit ever lands, so effectiveness is schedule-free.
    h.transfer_and_wait(s(3), s(0), Ratio::dec("0.1")).unwrap();
    let (v, _) = h.read(1).unwrap();
    record(1, (false, v));
    // Async transfers overlapping the next ops: stale clients must
    // renegotiate mid-operation.
    h.transfer_async(s(4), s(1), Ratio::dec("0.1")).unwrap();
    h.write(2, 20).unwrap();
    record(2, (true, Some(20)));
    h.transfer_async(s(5), s(2), Ratio::dec("0.1")).unwrap();
    let (v, _) = h.read(0).unwrap();
    record(0, (false, v));
    h.write(1, 30).unwrap();
    record(1, (true, Some(30)));
    h.transfer_and_wait(s(3), s(6), Ratio::dec("0.1")).unwrap();
    let (v, _) = h.read(2).unwrap();
    record(2, (false, v));
    h.write(0, 40).unwrap();
    record(0, (true, Some(40)));
    h.transfer_async(s(4), s(0), Ratio::dec("0.1")).unwrap();
    let (v, _) = h.read(1).unwrap();
    record(1, (false, v));
    h.settle();

    check_linearizable(&h.history()).expect("scenario must stay linearizable");
    let report = audit_transfers(h.config(), &h.all_completed_transfers());
    assert!(report.is_clean(), "{:?}", report.violations);

    let mut registers = Vec::new();
    let mut change_sets = Vec::new();
    for i in 0..n as u32 {
        let srv = h
            .world
            .actor::<DynServer<u64>>(h.server_actor(s(i)))
            .unwrap();
        registers.push(srv.register().value);
        change_sets.push(srv.changes().iter().copied().collect());
    }
    let m = h.world.metrics();
    let cs_bytes = m.bytes_of_kind("R")
        + m.bytes_of_kind("R_A")
        + m.bytes_of_kind("W")
        + m.bytes_of_kind("W_A");
    (
        Observation {
            ops,
            registers,
            change_sets,
        },
        cs_bytes,
        m.bytes_sent,
    )
}

#[test]
fn negotiate_and_force_full_are_observably_identical() {
    for seed in 0..10 {
        let (delta_obs, delta_cs_bytes, _) = run_scenario(seed, WireMode::Negotiate);
        let (full_obs, full_cs_bytes, _) = run_scenario(seed, WireMode::ForceFull);
        assert_eq!(
            delta_obs, full_obs,
            "seed {seed}: wire modes observably diverged"
        );
        // All servers converge to one change set after settle, in both modes.
        for cs in &delta_obs.change_sets[1..] {
            assert_eq!(
                cs, &delta_obs.change_sets[0],
                "seed {seed}: servers diverged"
            );
        }
        // The whole point: the negotiated wire moves fewer bytes on the
        // change-set-referencing phases, same scenario, same results.
        assert!(
            delta_cs_bytes < full_cs_bytes,
            "seed {seed}: negotiation did not save bytes ({delta_cs_bytes} vs {full_cs_bytes})"
        );
    }
}

#[test]
fn force_full_workload_stays_linearizable() {
    // The baseline mode is a live protocol in its own right (it is the
    // paper-literal wire): run the shared mixed workload under it.
    use awr::storage::workload::{run_mixed_workload, WorkloadSpec};
    for seed in 0..4 {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            4,
            900 + seed,
            UniformLatency::new(1_000, 50_000),
            DynOptions {
                wire: WireMode::ForceFull,
                ..DynOptions::default()
            },
        );
        let stats = run_mixed_workload(&mut h, 4, &WorkloadSpec::default(), seed);
        assert!(stats.reads + stats.writes > 10, "seed {seed}: thin history");
        check_linearizable(&h.history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn negotiated_concurrent_workload_stays_linearizable() {
    // And the negotiated mode survives genuinely concurrent clients (the
    // observable-equivalence test is sequential by design; this one is not).
    use awr::storage::workload::{run_mixed_workload, WorkloadSpec};
    for seed in 0..4 {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            4,
            700 + seed,
            UniformLatency::new(1_000, 50_000),
            DynOptions::default(),
        );
        let stats = run_mixed_workload(&mut h, 4, &WorkloadSpec::default(), seed);
        assert!(stats.reads + stats.writes > 10, "seed {seed}: thin history");
        check_linearizable(&h.history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
    }
}

#[test]
fn steady_state_requests_are_constant_size() {
    // After the system converges, R/W requests under negotiation are O(1):
    // growing |C| must not grow the mean request size.
    let mean_r_bytes = |extra: usize| -> f64 {
        let cfg = RpConfig::uniform(5, 1);
        let mut h: StorageHarness<u64> = StorageHarness::build(
            cfg,
            1,
            7,
            UniformLatency::new(1_000, 20_000),
            DynOptions::default(),
        );
        h.seed_converged_changes(extra);
        for v in 0..10 {
            h.write(0, v).unwrap();
            h.read(0).unwrap();
        }
        h.world.metrics().mean_bytes_of_kind("R")
    };
    let small = mean_r_bytes(10);
    let large = mean_r_bytes(2_000);
    assert_eq!(
        small, large,
        "steady-state R size must not depend on |C| ({small} vs {large})"
    );
}
