//! Cross-crate tests for the adaptive placement subsystem: policy safety
//! properties, the zero-cross-traffic replay pin, cross-traffic
//! congestion, and the core-harness reassignment driver.

use awr::core::{audit_transfers, RpConfig, RpHarness};
use awr::quorum::placement::{
    LatencyGreedy, PlacementInputs, PlacementPolicy, Static, UtilizationAware,
};
use awr::quorum::{
    integrity_holds, rp_floor, rp_integrity_holds, verify_intersection,
    WeightedMajorityQuorumSystem,
};
use awr::sim::{
    geo_network, ActorId, BurstyOnOff, CrossTraffic, Delivery, Flow, Metrics, Region,
    UniformLatency, MILLI,
};
use awr::storage::{DynOptions, PlacementDriver, StorageHarness};
use awr::types::{Ratio, ServerId, WeightMap};
use proptest::prelude::*;

fn s(i: u32) -> ServerId {
    ServerId(i)
}

/// Servers in the five regions, one client beside Virginia.
fn geo_placement() -> Vec<Region> {
    let mut p = Region::ALL.to_vec();
    p.push(Region::Virginia);
    p
}

// ---------------------------------------------------------------------------
// Property: every policy's proposal is a valid weight map.
// ---------------------------------------------------------------------------

/// Builds synthetic metrics from random per-link delay observations
/// between the observer (actor `n`) and each server.
fn synthetic_metrics(n: usize, props: &[u64], queues: &[u64], t_end: u64) -> Metrics {
    let mut m = Metrics::default();
    let obs = ActorId(n);
    for (i, (&p, &q)) in props.iter().zip(queues).enumerate() {
        let server = ActorId(i);
        for (from, to) in [(obs, server), (server, obs)] {
            m.record_send(
                "R",
                64 + p as usize % 512,
                from,
                to,
                Delivery {
                    queued: q,
                    transmission: p % 10_000,
                    propagation: p,
                },
            );
        }
    }
    m.last_time = awr::sim::Time(t_end);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever a policy observes, its proposal is a valid weight map:
    /// total preserved exactly, every weight non-negative (in fact above
    /// the RP-Integrity floor), quorum intersection holds, and the
    /// deployment still tolerates `f` crashes (Property 1).
    #[test]
    fn policy_proposals_are_valid_weight_maps(
        n in 3usize..8,
        f in 1usize..3,
        weights in proptest::collection::vec(500i128..2_000, 8),
        props in proptest::collection::vec(1_000u64..200_000_000, 8),
        queues in proptest::collection::vec(0u64..500_000_000, 8),
        t_end in 1_000_000u64..10_000_000_000,
    ) {
        prop_assume!(2 * f < n);
        let current: WeightMap = weights[..n].iter().map(|&w| Ratio::new(w, 1000)).collect();
        let total = current.total();
        let floor = rp_floor(total, n, f);
        let metrics = synthetic_metrics(n, &props[..n], &queues[..n], t_end);
        let inputs = PlacementInputs::for_prefix_servers(&metrics, &current, floor, f, vec![ActorId(n)]);

        let policies: [&dyn PlacementPolicy; 3] =
            [&Static, &LatencyGreedy::default(), &UtilizationAware::default()];
        for policy in policies {
            let p = policy.propose(&inputs);
            prop_assert_eq!(p.len(), n, "{}: wrong length", policy.name());
            prop_assert_eq!(p.total(), total, "{}: total not preserved", policy.name());
            for (sv, w) in p.iter() {
                prop_assert!(!w.is_negative(), "{}: negative weight at {sv}", policy.name());
            }
            // Adaptive proposals stay above the floor (Static inherits
            // whatever the current map does, by design).
            if policy.name() != "static" {
                prop_assert!(
                    rp_integrity_holds(&p, floor),
                    "{}: floor violated: {p}", policy.name()
                );
                prop_assert!(
                    integrity_holds(&p, f),
                    "{}: Property 1 violated: {p}", policy.name()
                );
            }
            // Quorum intersection (Lemma 3 generalized) for the proposal.
            let q = WeightedMajorityQuorumSystem::new(p);
            prop_assert!(verify_intersection(&q), "{}: quorums must intersect", policy.name());
        }
    }
}

// ---------------------------------------------------------------------------
// Replay pin: Static + zero cross traffic is observationally the plain
// bandwidth-aware schedule (the PR 3 network stack), seed for seed.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    sent: u64,
    bytes: u64,
    end_nanos: u64,
    reads: Vec<Option<u64>>,
    weights: WeightMap,
}

fn drive(
    h: &mut StorageHarness<u64>,
    mut on_round: impl FnMut(&mut StorageHarness<u64>, usize),
) -> Vec<Option<u64>> {
    let mut reads = Vec::new();
    for round in 0..6 {
        h.write(0, round as u64).unwrap();
        reads.push(h.read(0).unwrap().0);
        on_round(h, round);
    }
    h.settle();
    reads
}

fn fingerprint(h: &StorageHarness<u64>, reads: Vec<Option<u64>>) -> Fingerprint {
    let m = h.world.metrics();
    let n = h.config().n;
    Fingerprint {
        events: m.events_processed,
        sent: m.messages_sent,
        bytes: m.bytes_sent,
        end_nanos: m.last_time.nanos(),
        reads,
        weights: h
            .world
            .actor::<awr::storage::DynServer<u64>>(h.server_actor(s(0)))
            .unwrap()
            .changes()
            .weights(n),
    }
}

#[test]
fn static_policy_with_zero_cross_traffic_replays_the_plain_schedule() {
    for seed in [3u64, 11, 42] {
        // Arm 1: the plain bandwidth-aware geo network (the PR 3 stack).
        let mut plain: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(5, 1),
            1,
            seed,
            geo_network(&geo_placement(), 0.05),
            DynOptions::default(),
        );
        let plain_reads = drive(&mut plain, |_, _| {});

        // Arm 2: the same network wrapped in CrossTraffic with no flows,
        // plus a Static placement driver ticking every other round.
        let net = CrossTraffic::new(geo_network(&geo_placement(), 0.05), vec![]);
        let stats = net.stats();
        let mut wrapped: StorageHarness<u64> =
            StorageHarness::build(RpConfig::uniform(5, 1), 1, seed, net, DynOptions::default());
        let mut driver = PlacementDriver::new(Static, vec![wrapped.client_actor(0)]);
        let wrapped_reads = drive(&mut wrapped, |h, round| {
            if round % 2 == 1 {
                assert_eq!(driver.tick(h), 0, "static must never reassign");
            }
        });

        assert_eq!(
            fingerprint(&plain, plain_reads),
            fingerprint(&wrapped, wrapped_reads),
            "seed {seed}: schedules diverged"
        );
        assert_eq!(stats.total_injected(), 0);
        assert_eq!(driver.log.len(), 3);
        assert!(driver.log.entries().iter().all(|d| d.is_noop()));
    }
}

// ---------------------------------------------------------------------------
// Cross traffic really contends, and the contention is observable.
// ---------------------------------------------------------------------------

#[test]
fn cross_traffic_slows_ops_and_is_observed_in_metrics() {
    let run = |with_flows: bool| {
        let flows = if with_flows {
            // Ireland's ack link: 50 MB bursts every 400 ms.
            vec![Flow::new(
                ActorId(1),
                ActorId(5),
                BurstyOnOff::new(40 * MILLI, 360 * MILLI, 1_250_000_000),
            )]
        } else {
            vec![]
        };
        let net = CrossTraffic::new(geo_network(&geo_placement(), 0.0), flows);
        let stats = net.stats();
        let mut h: StorageHarness<u64> =
            StorageHarness::build(RpConfig::uniform(5, 1), 1, 7, net, DynOptions::default());
        let mut total_ms = 0.0;
        for v in 0..8u64 {
            let op = if v % 2 == 0 {
                h.write(0, v).unwrap()
            } else {
                h.read(0).unwrap().1
            };
            total_ms += (op.response - op.invoke) as f64 / 1e6;
        }
        let queued = h
            .world
            .metrics()
            .mean_link_queueing(ActorId(1), ActorId(5))
            .unwrap_or(0.0);
        (total_ms, queued, stats.total_injected())
    };
    let (clean_ms, clean_q, clean_bytes) = run(false);
    let (hot_ms, hot_q, hot_bytes) = run(true);
    assert_eq!(clean_bytes, 0);
    assert!(hot_bytes > 100_000_000, "flows must inject ({hot_bytes})");
    assert_eq!(clean_q, 0.0);
    assert!(hot_q > 1e6, "queueing must be observed ({hot_q})");
    assert!(
        hot_ms > clean_ms,
        "contention must slow ops ({hot_ms:.2} vs {clean_ms:.2})"
    );
}

// ---------------------------------------------------------------------------
// The bare restricted protocol's reassignment driver.
// ---------------------------------------------------------------------------

#[test]
fn rp_harness_reassigns_toward_a_target() {
    let cfg = RpConfig::uniform(5, 1);
    let mut h = RpHarness::build(cfg.clone(), 1, 9, UniformLatency::new(1_000, 60_000));
    let target = WeightMap::dec(&["1.2", "1.2", "0.8", "0.8", "1"]);
    let issued = h.reassign_toward(&target).unwrap();
    assert_eq!(issued, 2);
    h.settle();
    assert_eq!(h.weights_seen_by(s(0)), target);
    let report = audit_transfers(&cfg, &h.all_completed());
    assert!(report.is_clean(), "{:?}", report.violations);
    // Already at target: nothing further to do.
    assert_eq!(h.reassign_toward(&target).unwrap(), 0);
}

// ---------------------------------------------------------------------------
// Adaptive placement end-to-end beats static under contention (the bench
// gate's scenario in miniature).
// ---------------------------------------------------------------------------

#[test]
fn adaptive_placement_beats_static_under_cross_traffic() {
    let run = |adaptive: bool| {
        let flows = vec![Flow::new(
            ActorId(1),
            ActorId(5),
            BurstyOnOff::new(40 * MILLI, 360 * MILLI, 1_250_000_000),
        )];
        let net = CrossTraffic::new(geo_network(&geo_placement(), 0.0), flows);
        let mut h: StorageHarness<u64> =
            StorageHarness::build(RpConfig::uniform(5, 1), 1, 13, net, DynOptions::default());
        let mut driver: PlacementDriver = if adaptive {
            PlacementDriver::new(UtilizationAware::default(), vec![h.client_actor(0)])
        } else {
            PlacementDriver::new(Static, vec![h.client_actor(0)])
        };
        for v in 0..6u64 {
            if v % 2 == 0 {
                h.write(0, v).unwrap();
            } else {
                h.read(0).unwrap();
            }
        }
        driver.tick(&mut h);
        h.settle();
        h.write(0, 99).unwrap();
        h.read(0).unwrap();
        let mut total_ms = 0.0;
        const OPS: u64 = 10;
        for v in 0..OPS {
            let op = if v % 2 == 0 {
                h.write(0, 100 + v).unwrap()
            } else {
                h.read(0).unwrap().1
            };
            total_ms += (op.response - op.invoke) as f64 / 1e6;
        }
        total_ms / OPS as f64
    };
    let static_ms = run(false);
    let adaptive_ms = run(true);
    assert!(
        adaptive_ms < static_ms,
        "adaptive ({adaptive_ms:.2} ms) must beat static ({static_ms:.2} ms)"
    );
}
