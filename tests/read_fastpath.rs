//! The weighted fast-path read, observed from outside: `ReadMode::FastPath`
//! must be indistinguishable from the paper-literal `ReadMode::TwoPhase`
//! except in the wire traffic it saves.
//!
//! Three angles:
//!
//! * **seed-pinned equivalence** — the same fixed invocation schedule runs
//!   under both modes: identical completed writes, identical converged
//!   registers, both histories linearizable, and the byte deltas confined
//!   to the phase-2 kinds (`W`/`W_A` shrink, `R`/`R_A` do not move);
//! * **denial under a stale replier** — a read whose phase-1 quorum
//!   contains a server that missed the write must *not* fast-path (the
//!   max-tag weight fails the rule) and must write back to exactly that
//!   stale replier;
//! * **hot-key crash campaign** — a Zipf-skewed keyed workload over
//!   durable servers with crash/restart injections stays keyed-linearizable
//!   with the fast path on, and actually takes the fast path.

use awr::core::RpConfig;
use awr::sim::{ActorId, PendingKind, UniformLatency};
use awr::storage::workload::{
    run_keyed_workload, KeyDistribution, KeyedWorkloadSpec, WorkloadSpec,
};
use awr::storage::{
    check_linearizable_keyed, DynOptions, DynServer, OpKind, ReadMode, StorageHarness,
};
use awr::types::{ObjectId, Ratio, ServerId};

/// A fixed invocation schedule both modes replay identically: rounds are
/// spaced so every op completes before the next round begins under either
/// mode, making the invocation stream mode-independent even though the
/// fast path responds earlier.
fn drive(read: ReadMode, seed: u64) -> StorageHarness<u64> {
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(5, 1),
        2,
        seed,
        UniformLatency::new(1_000, 20_000),
        DynOptions {
            read,
            ..DynOptions::default()
        },
    );
    let mut val = 0u64;
    for round in 0..12u64 {
        assert!(
            !h.client_busy(0) && !h.client_busy(1),
            "round spacing must make invocations mode-independent"
        );
        // Client 0 writes every third round, reads otherwise; client 1
        // does the opposite phase — so rounds mix read/read, read/write,
        // and write/write concurrency.
        if round % 3 == 0 {
            val += 1;
            h.begin_async_obj(0, ObjectId::DEFAULT, Some(val));
        } else {
            h.begin_async_obj(0, ObjectId::DEFAULT, None);
        }
        if round % 2 == 0 {
            h.begin_async_obj(1, ObjectId::DEFAULT, None);
        } else {
            val += 1;
            h.begin_async_obj(1, ObjectId::DEFAULT, Some(val));
        }
        // Far longer than one op's worst case (~8 hops × 20 µs).
        h.world.run_for(1_000_000);
    }
    h.settle();
    h
}

#[test]
fn fastpath_is_observationally_equivalent_to_twophase() {
    for seed in [0, 1, 7] {
        let fast = drive(ReadMode::FastPath, seed);
        let two = drive(ReadMode::TwoPhase, seed);

        // Same ops completed: identical (client, kind) stream per client,
        // identical written values. Read *values* may legitimately differ
        // where a read raced a write — linearizability is the contract.
        let shape = |h: &StorageHarness<u64>| {
            let mut v: Vec<(usize, bool, Option<u64>)> = h
                .history()
                .ops
                .iter()
                .map(|o| match &o.kind {
                    OpKind::Write(v) => (o.client, true, Some(*v)),
                    OpKind::Read(_) => (o.client, false, None),
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(shape(&fast), shape(&two), "seed {seed}: op stream diverged");
        check_linearizable_keyed(&fast.history())
            .unwrap_or_else(|e| panic!("seed {seed} fast-path: {e}"));
        check_linearizable_keyed(&two.history())
            .unwrap_or_else(|e| panic!("seed {seed} two-phase: {e}"));

        // Converged state is mode-independent: the last write wins either
        // way.
        let regs = |h: &StorageHarness<u64>| {
            (0..5u32)
                .map(|i| {
                    h.world
                        .actor::<DynServer<u64>>(h.server_actor(ServerId(i)))
                        .unwrap()
                        .register_of(ObjectId::DEFAULT)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(regs(&fast), regs(&two), "seed {seed}: final registers");

        // The byte delta lives exactly in phase 2. Phase 1 does not move:
        // same invocations, same `R` broadcasts, same acks.
        let (fm, tm) = (fast.world.metrics(), two.world.metrics());
        assert_eq!(fm.sent_of_kind("R"), tm.sent_of_kind("R"), "seed {seed}");
        assert_eq!(fm.bytes_of_kind("R"), tm.bytes_of_kind("R"), "seed {seed}");
        assert_eq!(
            fm.sent_of_kind("R_A"),
            tm.sent_of_kind("R_A"),
            "seed {seed}"
        );
        let reads = fast
            .history()
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Read(_)))
            .count() as u64;
        let hits = fm.counter("read_fastpath_hit");
        let misses = fm.counter("read_fastpath_miss");
        assert_eq!(hits + misses, reads, "seed {seed}: every read classified");
        assert!(hits > 0, "seed {seed}: settled reads must fast-path");
        assert_eq!(tm.counter("read_fastpath_hit"), 0, "seed {seed}");
        assert_eq!(tm.counter("read_fastpath_miss"), 0, "seed {seed}");
        assert_eq!(
            fm.sample_count("read_writeback_fanout"),
            misses,
            "seed {seed}: one fanout sample per non-fast read"
        );
        // Each hit saves a full 5-server write-back round trip; misses
        // save whatever was fresh. Strict inequality once any hit landed.
        assert!(
            fm.sent_of_kind("W") < tm.sent_of_kind("W"),
            "seed {seed}: fast path must send fewer W ({} vs {})",
            fm.sent_of_kind("W"),
            tm.sent_of_kind("W")
        );
        assert!(
            fm.bytes_of_kind("W") < tm.bytes_of_kind("W"),
            "seed {seed}: fast path must send fewer W bytes"
        );
        assert!(
            fm.sent_of_kind("W_A") < tm.sent_of_kind("W_A"),
            "seed {seed}: fewer W deliveries, fewer acks"
        );
    }
}

/// Steps pending events in time order — skipping deliveries that match
/// `withhold` — until `until` holds. Panics on a stall.
fn step_until(
    h: &mut StorageHarness<u64>,
    withhold: impl Fn(ActorId, &str) -> bool,
    mut until: impl FnMut(&StorageHarness<u64>) -> bool,
) {
    loop {
        if until(h) {
            return;
        }
        let next = h.world.pending_events().into_iter().find(
            |e| !matches!(e.kind, PendingKind::Deliver { to, kind, .. } if withhold(to, kind)),
        );
        match next {
            Some(e) => {
                h.world.step_seq(e.seq);
            }
            None => panic!("stepping stalled before reaching the target state"),
        }
    }
}

#[test]
fn fastpath_denied_when_a_quorum_replier_is_stale() {
    // Regression for the rule itself: complete a write through {s0, s1}
    // while s2 never hears its `W`, then force the read's phase-1 quorum
    // to be {s2, s0}. The max tag's weight (s0 alone, 1 of 3) fails the
    // strict majority rule, so the read must take the two-phase route —
    // and its write-back must go to exactly the stale s2.
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(3, 1),
        1,
        0,
        UniformLatency::new(1_000, 1_000),
        DynOptions::default(),
    );
    let s2 = h.server_actor(ServerId(2));
    h.begin_async_obj(0, ObjectId::DEFAULT, Some(7));
    step_until(&mut h, |to, _| to == s2, |h| !h.history().is_empty());
    // Flush s2's harmless leftovers (the completed write's phase-1 `R`
    // and its stale ack) but keep its `W` withheld: s2 stays at bottom.
    step_until(
        &mut h,
        |to, kind| to == s2 && kind == "W",
        |h| {
            h.world.pending_events().iter().all(
                |e| matches!(e.kind, PendingKind::Deliver { to, kind, .. } if to == s2 && kind == "W"),
            )
        },
    );

    h.begin_async_obj(0, ObjectId::DEFAULT, None);
    // Quorum order s2 first, then s0: deliver the read's `R` to s2 and
    // its bottom ack, then the same through s0 — quorum reached with a
    // split register view.
    for server in [s2, h.server_actor(ServerId(0))] {
        let r = h
            .world
            .pending_events()
            .into_iter()
            .find(|e| {
                matches!(e.kind, PendingKind::Deliver { to, kind, .. }
                if to == server && kind == "R")
            })
            .expect("read's R pending");
        h.world.step_seq(r.seq);
        let ack = h
            .world
            .pending_events()
            .into_iter()
            .find(|e| {
                matches!(e.kind, PendingKind::Deliver { from, kind, .. }
                if from == server && kind == "R_A")
            })
            .expect("server's R_A pending");
        h.world.step_seq(ack.seq);
    }
    let m = h.world.metrics();
    assert_eq!(
        m.counter("read_fastpath_hit"),
        0,
        "stale quorum fast-pathed"
    );
    assert_eq!(m.counter("read_fastpath_miss"), 1);
    let fanout = m
        .sample_hist("read_writeback_fanout")
        .expect("miss records its fanout");
    assert_eq!(
        fanout.get(&1).copied(),
        Some(1),
        "write-back must target exactly the one stale replier: {fanout:?}"
    );

    // Drain through the explorer seam: `step_seq` delivers the withheld
    // (now virtually "late") events without the in-order stepper's
    // time-monotonicity assertion.
    while let Some(e) = h.world.pending_events().into_iter().next() {
        h.world.step_seq(e.seq);
    }
    let read = h
        .history()
        .ops
        .iter()
        .find(|o| matches!(o.kind, OpKind::Read(_)))
        .cloned()
        .expect("read completed");
    assert_eq!(
        read.kind,
        OpKind::Read(Some(7)),
        "write-back read the value"
    );
    // One full-fanout write round (3) plus the single targeted write-back.
    assert_eq!(h.world.metrics().sent_of_kind("W"), 4);
}

#[test]
fn hot_key_crash_campaign_stays_keyed_linearizable() {
    // Zipf-hot keys, durable servers, a crash/restart between every
    // workload burst: the fast path must neither break per-key atomicity
    // nor stop firing.
    let mut h: StorageHarness<u64> = StorageHarness::build_durable(
        RpConfig::uniform(5, 1),
        3,
        42,
        UniformLatency::new(1_000, 40_000),
        DynOptions::default(),
    );
    let spec = KeyedWorkloadSpec {
        base: WorkloadSpec {
            rounds: 10,
            transfer_percent: 20,
            transfer_delta: Ratio::dec("0.05"),
            ..WorkloadSpec::default()
        },
        n_objects: 8,
        dist: KeyDistribution::Zipfian { exponent: 1.2 },
    };
    for (burst, victim) in [(0u64, ServerId(0)), (1, ServerId(3)), (2, ServerId(1))] {
        run_keyed_workload(&mut h, 3, &spec, 42 + burst);
        h.crash_server(victim);
        run_keyed_workload(&mut h, 3, &spec, 142 + burst);
        h.restart_server(victim);
        h.settle();
    }
    let hist = h.history();
    assert!(hist.len() > 50, "campaign too small to mean anything");
    check_linearizable_keyed(&hist).unwrap_or_else(|e| panic!("{e}"));
    let m = h.world.metrics();
    assert!(
        m.counter("read_fastpath_hit") > 0,
        "hot keys under skew must take the fast path"
    );
    assert_eq!(
        m.counter("read_fastpath_hit") + m.counter("read_fastpath_miss"),
        hist.ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Read(_)))
            .count() as u64,
        "every completed read classified as hit or miss"
    );
}
