//! The open-loop contract, pinned end to end.
//!
//! An open-loop arrival process must be a pure function of `(spec,
//! seed)`: a private RNG, no reads of simulation state, no knowledge of
//! completions. Three consequences, each tested here through the public
//! facade:
//!
//! 1. **Determinism** — the same seed yields the byte-identical arrival
//!    sequence; different seeds diverge.
//! 2. **Calibration** — the empirical rate converges to the spec's
//!    long-run mean (Poisson directly, bursty via its duty cycle), and
//!    splitting a spec across clients preserves the aggregate.
//! 3. **Never blocks on completions** — driving a full protocol stack
//!    under radically different network latencies leaves the generated
//!    arrival stream untouched: count and fingerprint are identical
//!    while the latency distributions differ wildly. Offered load is
//!    what the spec says, not what the system manages to absorb.

use awr::core::RpConfig;
use awr::sim::{ArrivalProcess, ArrivalSpec, Time, UniformLatency, MILLI, SECOND};
use awr::storage::workload::KeyDistribution;
use awr::storage::{DynOptions, OpenLoopHarness, OpenLoopSpec};

fn collect(p: &mut dyn ArrivalProcess) -> Vec<Time> {
    std::iter::from_fn(|| p.next_arrival()).collect()
}

#[test]
fn same_seed_same_sequence_across_spec_shapes() {
    let specs = [
        ArrivalSpec::Poisson {
            rate_per_sec: 7_500.0,
        },
        ArrivalSpec::Bursty {
            on_rate_per_sec: 30_000.0,
            on_ns: 10 * MILLI,
            off_ns: 30 * MILLI,
        },
    ];
    let end = Time(2 * SECOND);
    for spec in specs {
        let a = collect(&mut spec.build(42, end));
        let b = collect(&mut spec.build(42, end));
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must replay byte-identically");
        let c = collect(&mut spec.build(43, end));
        assert_ne!(a, c, "different seeds must diverge");
        // Strictly within the horizon, non-decreasing throughout.
        assert!(a.iter().all(|t| *t < end));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn empirical_rates_match_spec_means() {
    let end = Time(20 * SECOND);
    for (spec, mean) in [
        (
            ArrivalSpec::Poisson {
                rate_per_sec: 5_000.0,
            },
            5_000.0,
        ),
        (
            // 20k/s at a 25% duty cycle: 5k/s long-run.
            ArrivalSpec::Bursty {
                on_rate_per_sec: 20_000.0,
                on_ns: 5 * MILLI,
                off_ns: 15 * MILLI,
            },
            5_000.0,
        ),
    ] {
        assert!((spec.mean_rate() - mean).abs() < 1e-9);
        let direct = collect(&mut spec.build(7, end)).len() as f64 / 20.0;
        assert!(
            (direct - mean).abs() < 0.03 * mean,
            "direct rate {direct} vs spec {mean}"
        );
        // Superposition: n split processes offer the same aggregate.
        let split: usize = (0..10)
            .map(|i| collect(&mut spec.split(10).build(900 + i, end)).len())
            .sum();
        let split_rate = split as f64 / 20.0;
        assert!(
            (split_rate - mean).abs() < 0.03 * mean,
            "split aggregate {split_rate} vs spec {mean}"
        );
    }
}

#[test]
fn arrivals_never_block_on_completions() {
    // The same open-loop workload against a LAN-grade and a WAN-grade
    // network. Completions arrive ~50x slower on the latter; the arrival
    // stream must not notice.
    let run = |lat: (u64, u64)| {
        let mut h = OpenLoopHarness::build(
            RpConfig::uniform(3, 1),
            &OpenLoopSpec {
                n_clients: 8,
                n_objects: 4,
                dist: KeyDistribution::Zipfian { exponent: 1.0 },
                write_fraction: 0.3,
                arrivals: ArrivalSpec::Poisson {
                    rate_per_sec: 4_000.0,
                },
                duration: SECOND / 4,
                per_object: false,
                seed: 99,
            },
            UniformLatency::new(lat.0, lat.1),
            DynOptions::default(),
        );
        h.run(None, 50 * MILLI);
        h.stats()
    };
    let lan = run((50_000, 200_000));
    let wan = run((5 * MILLI, 20 * MILLI));
    assert!(lan.generated > 500);
    assert_eq!(lan.generated, wan.generated, "offered load sagged");
    assert_eq!(
        lan.arrival_hash, wan.arrival_hash,
        "arrival stream depended on system behaviour"
    );
    // Both drained, but the WAN run queued: its tail reflects the wait.
    assert_eq!(lan.completed, lan.generated);
    assert_eq!(wan.completed, wan.generated);
    assert!(wan.all().quantile(0.99) > 4 * lan.all().quantile(0.99));
}
