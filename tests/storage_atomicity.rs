//! Integration tests for the dynamic-weighted atomic storage (Theorem 6):
//! linearizability under concurrent reads, writes, transfers, crashes, and
//! adversarial schedules.

use awr::core::{audit_transfers, RpConfig};
use awr::sim::UniformLatency;
use awr::storage::workload::{run_mixed_workload, WorkloadSpec};
use awr::storage::{check_linearizable, DynOptions, StorageHarness};
use awr::types::{Ratio, ServerId};

fn s(i: u32) -> ServerId {
    ServerId(i)
}

#[test]
fn mixed_workloads_linearizable_many_seeds() {
    for seed in 0..8 {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            4,
            seed,
            UniformLatency::new(1_000, 50_000),
            DynOptions::default(),
        );
        let stats = run_mixed_workload(&mut h, 4, &WorkloadSpec::default(), seed);
        assert!(stats.reads + stats.writes > 10, "seed {seed}: thin history");
        check_linearizable(&h.history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
    }
}

#[test]
fn storage_linearizable_with_crashes_and_transfers() {
    for seed in 0..6 {
        let mut h: StorageHarness<u64> = StorageHarness::build(
            RpConfig::uniform(7, 2),
            3,
            100 + seed,
            UniformLatency::new(1_000, 50_000),
            DynOptions::default(),
        );
        h.write(0, 1).unwrap();
        h.transfer_and_wait(s(3), s(0), Ratio::dec("0.2")).unwrap();
        // Crash two servers (the maximum f).
        h.crash_server(s(5));
        h.crash_server(s(6));
        h.write(1, 2).unwrap();
        h.transfer_and_wait(s(4), s(1), Ratio::dec("0.2")).unwrap();
        let (v, _) = h.read(2).unwrap();
        assert_eq!(v, Some(2), "seed {seed}");
        h.settle();
        check_linearizable(&h.history()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn weight_gains_by_crashed_servers_do_not_block_the_system() {
    // A transfer *to* a crashed server still completes (the receiver's
    // register refresh never runs, but n − f − 1 other servers ack), and
    // the system keeps serving.
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(7, 2),
        2,
        9,
        UniformLatency::new(1_000, 50_000),
        DynOptions::default(),
    );
    h.write(0, 5).unwrap();
    h.crash_server(s(6));
    let out = h.transfer_and_wait(s(3), s(6), Ratio::dec("0.1")).unwrap();
    assert!(out.is_effective());
    let (v, _) = h.read(1).unwrap();
    assert_eq!(v, Some(5));
    check_linearizable(&h.history()).unwrap();
}

#[test]
fn many_small_transfers_conserve_total_and_stay_atomic() {
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(5, 1),
        2,
        11,
        UniformLatency::new(1_000, 30_000),
        DynOptions::default(),
    );
    h.write(0, 1).unwrap();
    for i in 0..20u32 {
        let from = s(i % 5);
        let to = s((i + 2) % 5);
        let _ = h.transfer_and_wait(from, to, Ratio::dec("0.05"));
        if i % 5 == 0 {
            h.write(1, 100 + i as u64).unwrap();
        }
    }
    h.settle();
    // Conservation through ~20 transfers.
    let total = h
        .world
        .actor::<awr::storage::DynServer<u64>>(h.server_actor(s(0)))
        .unwrap()
        .changes()
        .total_weight(5);
    assert_eq!(total, Ratio::integer(5));
    check_linearizable(&h.history()).unwrap();
    let report = audit_transfers(h.config(), &h.all_completed_transfers());
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn restart_metric_visible_to_clients() {
    let mut h: StorageHarness<u64> = StorageHarness::build(
        RpConfig::uniform(7, 2),
        2,
        13,
        UniformLatency::new(1_000, 40_000),
        DynOptions::default(),
    );
    h.write(0, 1).unwrap();
    h.transfer_and_wait(s(3), s(0), Ratio::dec("0.25")).unwrap();
    h.settle();
    let (_, op) = h.read(1).unwrap(); // client 1 is stale → restarts
    assert!(op.restarts > 0);
    assert!(h.total_restarts() > 0);
}
