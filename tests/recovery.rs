//! Crash/restart recovery: durability must be invisible when nothing
//! crashes, and safe when things do.
//!
//! Four claims, each pinned by seed so a regression is a deterministic
//! failure, not a flake:
//!
//! 1. **No-crash transparency** — attaching durable storage (WAL +
//!    snapshots) to every server changes *nothing* about a crash-free
//!    schedule: identical operation records, identical message counts and
//!    bytes per kind. Durability is observation, not participation.
//! 2. **Compaction transparency** — journal compaction bounds the
//!    in-memory journal while leaving the completed-operation schedule
//!    untouched (payload bytes may differ when a delta degrades to full;
//!    under a latency-only network that cannot reorder anything).
//! 3. **Recovery equivalence** — a server that crashes mid-workload and
//!    reboots from snapshot + WAL, then rejoins through the sync round and
//!    count-based refresh, converges to the digest and registers of a
//!    replica that never crashed; histories stay linearizable and the
//!    transfer audit stays clean throughout the campaign.
//! 4. **Retry safety** — the client-side rebroadcast rescues operations
//!    whose quorum contacts died mid-phase, and duplicate deliveries are
//!    tag-idempotent: they can neither double-apply a write nor
//!    double-count a quorum member.

use awr::core::{audit_transfers, RpConfig};
use awr::sim::{Fault, FaultPlan, Time, UniformLatency};
use awr::storage::workload::{run_mixed_workload, WorkloadSpec};
use awr::storage::{
    check_linearizable, check_linearizable_keyed, CheckpointCadence, DynMsg, DynOptions, DynServer,
    OpKind, RetryPolicy, StorageHarness,
};
use awr::types::{ObjectId, Ratio, ServerId};

fn s(i: u32) -> ServerId {
    ServerId(i)
}

/// One recorded op: (client, object key, is_write, value, invoke, response).
type OpRec = (usize, u64, bool, Option<u64>, u64, u64);

fn op_records(h: &StorageHarness<u64>) -> Vec<OpRec> {
    let mut ops: Vec<OpRec> = h
        .history()
        .ops
        .iter()
        .map(|o| {
            let (w, v) = match &o.kind {
                OpKind::Read(v) => (false, *v),
                OpKind::Write(v) => (true, Some(*v)),
            };
            (
                o.client,
                o.obj.key(),
                w,
                v,
                o.invoke.nanos(),
                o.response.nanos(),
            )
        })
        .collect();
    ops.sort();
    ops
}

fn run_workload(mut h: StorageHarness<u64>, seed: u64) -> StorageHarness<u64> {
    run_mixed_workload(&mut h, 3, &WorkloadSpec::default(), seed);
    h.settle();
    h
}

#[test]
fn durable_storage_is_invisible_without_crashes() {
    for seed in 0..4u64 {
        let cfg = RpConfig::uniform(7, 2);
        let net = || UniformLatency::new(1_000, 50_000);
        let plain = run_workload(
            StorageHarness::build(cfg.clone(), 3, seed, net(), DynOptions::default()),
            seed,
        );
        let durable = run_workload(
            StorageHarness::build_durable(cfg.clone(), 3, seed, net(), DynOptions::default()),
            seed,
        );
        assert_eq!(
            op_records(&plain),
            op_records(&durable),
            "seed {seed}: durable run diverged from plain run"
        );
        let (mp, md) = (plain.world.metrics(), durable.world.metrics());
        assert_eq!(mp.bytes_sent, md.bytes_sent, "seed {seed}: bytes diverged");
        assert_eq!(
            mp.sent_by_kind, md.sent_by_kind,
            "seed {seed}: message counts diverged"
        );
        assert_eq!(
            mp.bytes_by_kind, md.bytes_by_kind,
            "seed {seed}: per-kind bytes diverged"
        );
        // The durable run actually wrote something: every server's WAL (or
        // snapshot) saw the adopted registers and completed changes.
        let persisted_anything = cfg.servers().any(|sv| {
            durable
                .storage_handle(sv)
                .map(|st| st.load().is_some())
                .unwrap_or(false)
        });
        assert!(persisted_anything, "seed {seed}: nothing was persisted");
    }
}

#[test]
fn compaction_bounds_journal_without_changing_the_schedule() {
    let cadence = CheckpointCadence {
        every: 64,
        min_retain: 16,
    };
    for seed in 0..4u64 {
        let cfg = RpConfig::uniform(7, 2);
        let net = || UniformLatency::new(1_000, 50_000);
        let build = |options| {
            let mut h: StorageHarness<u64> =
                StorageHarness::build(cfg.clone(), 3, seed, net(), options);
            // A large converged |C| so compaction has a prefix to drop.
            h.seed_converged_changes(200);
            h
        };
        let full = run_workload(build(DynOptions::default()), seed);
        let compacted = run_workload(
            build(DynOptions {
                checkpoint: Some(cadence),
                ..DynOptions::default()
            }),
            seed,
        );
        assert_eq!(
            op_records(&full),
            op_records(&compacted),
            "seed {seed}: compaction changed the completed-op schedule"
        );
        for sv in cfg.servers() {
            let journal = |h: &StorageHarness<u64>| {
                h.world
                    .actor::<DynServer<u64>>(h.server_actor(sv))
                    .unwrap()
                    .changes()
                    .journal_len()
            };
            let (jf, jc) = (journal(&full), journal(&compacted));
            assert!(jf >= 200, "seed {seed} s{sv}: uncompacted journal shrank");
            assert!(
                jc < cadence.every + cadence.min_retain,
                "seed {seed} s{sv}: compacted journal not bounded (len {jc})"
            );
            let changes = |h: &StorageHarness<u64>| {
                h.world
                    .actor::<DynServer<u64>>(h.server_actor(sv))
                    .unwrap()
                    .changes()
                    .len()
            };
            assert_eq!(
                changes(&full),
                changes(&compacted),
                "seed {seed} s{sv}: compaction changed set membership"
            );
        }
    }
}

/// Durable options for crash campaigns: compaction on, retries on.
fn crash_options() -> DynOptions {
    DynOptions {
        checkpoint: Some(CheckpointCadence::default()),
        retry: Some(RetryPolicy::default()),
        ..DynOptions::default()
    }
}

#[test]
fn crash_restart_campaign_stays_linearizable() {
    let cfg = RpConfig::uniform(7, 2);
    let servers: Vec<_> = (0..7).map(awr::sim::ActorId).collect();
    for seed in 10..14u64 {
        let mut h: StorageHarness<u64> = StorageHarness::build_durable(
            cfg.clone(),
            3,
            seed,
            UniformLatency::new(1_000, 50_000),
            crash_options(),
        );
        // Random kills across the workload window, each rebooting from its
        // durable store after a short outage.
        let plan = FaultPlan::random(seed, &servers, Time(3_000_000), 700_000, 250_000);
        assert!(!plan.is_empty(), "seed {seed}: empty fault plan");
        h.install_fault_plan(&plan);
        run_mixed_workload(&mut h, 3, &WorkloadSpec::default(), seed);
        h.settle();
        assert_eq!(
            h.world.metrics().restarts,
            plan.len() as u64,
            "seed {seed}: not every kill rebooted"
        );
        let hist = h.history();
        assert!(hist.len() >= 10, "seed {seed}: too few completed ops");
        check_linearizable(&hist).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let report = audit_transfers(h.config(), &h.all_completed_transfers());
        assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
    }
}

#[test]
fn recovered_server_converges_with_never_crashed_replicas() {
    let mut h: StorageHarness<u64> = StorageHarness::build_durable(
        RpConfig::uniform(7, 2),
        2,
        77,
        UniformLatency::new(1_000, 40_000),
        crash_options(),
    );
    h.write(0, 1).unwrap();
    h.transfer_and_wait(s(3), s(1), Ratio::dec("0.1")).unwrap();
    h.settle();
    // s0 dies; the world moves on without it: new writes, new weights.
    h.crash_server(s(0));
    h.write(0, 2).unwrap();
    h.write_obj(1, ObjectId(9), 3).unwrap();
    h.transfer_and_wait(s(4), s(2), Ratio::dec("0.1")).unwrap();
    h.settle();
    // Reboot from snapshot + WAL; the rejoin round (SyncR + refresh) runs
    // on restart, then the world settles.
    h.restart_server(s(0));
    h.settle();
    assert_eq!(h.world.metrics().restarts, 1);
    let server = |h: &StorageHarness<u64>, i: u32| {
        let a = h.server_actor(s(i));
        let srv = h.world.actor::<DynServer<u64>>(a).unwrap();
        (
            srv.changes().digest(),
            srv.register_of(ObjectId::DEFAULT),
            srv.register_of(ObjectId(9)),
        )
    };
    let recovered = server(&h, 0);
    for live in 1..7u32 {
        assert_eq!(
            recovered,
            server(&h, live),
            "recovered s0 diverged from live s{live}"
        );
    }
    // And the recovered digest reflects the transfer it slept through.
    let (v, _) = h.read(0).unwrap();
    assert_eq!(v, Some(2));
    check_linearizable_keyed(&h.history()).unwrap();
    // Regression pin: the rebooted server must also be able to *donate*
    // weight again. Its RB sequence resumes past its pre-crash broadcasts
    // (peers' dedup sets survive the crash); if it restarted at zero, this
    // transfer's ⟨T⟩ envelope would be swallowed as a duplicate everywhere
    // and the call would stall until the world quiesced.
    h.transfer_and_wait(s(0), s(5), Ratio::dec("0.1"))
        .expect("recovered server must complete a fresh transfer");
    h.settle();
}

#[test]
fn retry_rescues_ops_whose_quorum_contacts_died_mid_phase() {
    // Adversarial transient: four servers are down when the client's
    // phase-1 broadcast lands (more than f *concurrently*, but each
    // reboots — safety is durability's job, liveness is retry's). The
    // three live responders hold weight 3 ≤ 3.5, so the op stalls until
    // the rebroadcast reaches the rebooted majority.
    let cfg = RpConfig::uniform(7, 2);
    let net = || UniformLatency::new(1_000_000, 2_000_000); // 1–2 ms
    let plan = FaultPlan::scheduled([
        Fault::kill_restart(awr::sim::ActorId(0), Time(100_000), 5_000_000),
        Fault::kill_restart(awr::sim::ActorId(1), Time(100_000), 5_000_000),
        Fault::kill_restart(awr::sim::ActorId(5), Time(100_000), 6_000_000),
        Fault::kill_restart(awr::sim::ActorId(6), Time(100_000), 6_000_000),
    ]);
    // Without retry the op waits forever on replies that were dropped.
    let mut stalled: StorageHarness<u64> = StorageHarness::build_durable(
        cfg.clone(),
        1,
        5,
        net(),
        DynOptions {
            checkpoint: Some(CheckpointCadence::default()),
            ..DynOptions::default()
        },
    );
    stalled.install_fault_plan(&plan);
    assert!(
        stalled.write(0, 42).is_err(),
        "op should stall without retry"
    );
    // With retry the rebroadcast completes it.
    let mut rescued: StorageHarness<u64> = StorageHarness::build_durable(
        cfg,
        1,
        5,
        net(),
        DynOptions {
            checkpoint: Some(CheckpointCadence::default()),
            retry: Some(RetryPolicy {
                base: 8_000_000,
                max_attempts: 4,
            }),
            ..DynOptions::default()
        },
    );
    rescued.install_fault_plan(&plan);
    rescued.write(0, 42).unwrap();
    let (v, _) = rescued.read(0).unwrap();
    assert_eq!(v, Some(42));
    rescued.settle();
    check_linearizable(&rescued.history()).unwrap();
}

#[test]
fn duplicate_write_delivery_is_tag_idempotent() {
    // The property retry leans on: delivering the same W twice (as a
    // rebroadcast does to servers that already processed it) changes
    // nothing — the register tag decides, not the delivery count.
    let cfg = RpConfig::uniform(5, 1);
    let mut h: StorageHarness<u64> = StorageHarness::build(
        cfg.clone(),
        1,
        8,
        UniformLatency::new(1_000, 10_000),
        DynOptions::default(),
    );
    h.write(0, 42).unwrap();
    let reg_before = h
        .world
        .actor::<DynServer<u64>>(h.server_actor(s(0)))
        .unwrap()
        .register();
    // Forge a duplicate of the completed write, twice over.
    for _ in 0..2 {
        let dup = DynMsg::W {
            op: 1,
            obj: ObjectId::DEFAULT,
            reg: reg_before,
            changes: awr::types::CsRef::summary(
                h.world
                    .actor::<DynServer<u64>>(h.server_actor(s(0)))
                    .unwrap()
                    .changes(),
            ),
        };
        h.world.inject(h.client_actor(0), h.server_actor(s(0)), dup);
    }
    h.settle();
    let reg_after = h
        .world
        .actor::<DynServer<u64>>(h.server_actor(s(0)))
        .unwrap()
        .register();
    assert_eq!(reg_before.tag, reg_after.tag, "duplicate W moved the tag");
    assert_eq!(
        reg_before.value, reg_after.value,
        "duplicate W moved the value"
    );
    let (v, _) = h.read(0).unwrap();
    assert_eq!(v, Some(42));
    check_linearizable(&h.history()).unwrap();
}
