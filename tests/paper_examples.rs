//! Integration tests replaying every worked example in the paper, through
//! the public facade crate.

use awr::core::{audit_transfers, RpConfig, RpHarness, WrOracle};
use awr::quorum::{rp_floor, QuorumSystem, WeightedMajorityQuorumSystem};
use awr::sim::UniformLatency;
use awr::types::{Change, Ratio, ServerId, WeightMap};

fn s(i: u32) -> ServerId {
    ServerId(i)
}

/// Paper Example 1 (§III): reassign semantics, abort on Integrity
/// violation, and read_changes responses.
#[test]
fn example1_reassign_semantics() {
    // S = {s1..s4}, Π = {c1, c2}, f = 1, all initial weights 1.
    let oracle = WrOracle::new(WeightMap::uniform(4, Ratio::ONE), 1);

    // s1 invokes reassign(s1, 1.5) → completed with the non-zero change
    // ⟨s1, 2, s1, 1.5⟩ (Validity-I forbids a null outcome here).
    let c = oracle.reassign(s(0).into(), 2, s(0), Ratio::dec("1.5"));
    assert_eq!(c, Change::new(s(0), 2, s(0), Ratio::dec("1.5")));

    // c1 invokes read_changes(s1) and must receive C_{s1,0} ∪ {⟨s1,2,s1,1.5⟩}.
    let response = oracle.read_changes(s(0));
    assert!(response.contains(&Change::initial(s(0), Ratio::ONE)));
    assert!(response.contains(&c));
    assert_eq!(response.server_weight(s(0)), Ratio::dec("2.5"));

    // s3 invokes reassign(s2, −0.5): creating ⟨s3, 2, s2, −0.5⟩ would
    // violate Integrity, so the null change ⟨s3, 2, s2, 0⟩ is created.
    let c2 = oracle.reassign(s(2).into(), 2, s(1), Ratio::dec("-0.5"));
    assert!(c2.is_null());
    assert_eq!(c2.issuer, s(2).into());

    // c2's read_changes(s2) contains the initial change and the null one.
    let response = oracle.read_changes(s(1));
    assert_eq!(response.len(), 2);
    assert!(response.contains(&c2));
    assert_eq!(response.server_weight(s(1)), Ratio::ONE);
}

/// Paper Example 2 + Figure 1 (§V.B): the restricted pairwise protocol on
/// a real asynchronous schedule.
#[test]
fn fig1_replay_full_protocol() {
    let cfg = RpConfig::uniform(7, 2);
    assert_eq!(cfg.floor(), Ratio::dec("0.7")); // "weights must exceed 0.7"

    // "the size of each quorum is four at the beginning"
    let initial_qs = WeightedMajorityQuorumSystem::new(cfg.initial_weights.clone());
    assert_eq!(initial_qs.min_quorum_size(), 4);

    let mut h = RpHarness::build(cfg.clone(), 1, 0xF161, UniformLatency::new(1_000, 80_000));

    // Transfers by s4, s5, s6 (completed before t1).
    for (from, to) in [(3, 0), (4, 1), (5, 2)] {
        let out = h
            .transfer_and_wait(s(from), s(to), Ratio::dec("0.25"))
            .unwrap();
        assert!(out.is_effective());
    }
    h.settle();

    // "As a result, {s1, s2, s3} (a minority of servers) constitutes a
    // quorum."
    let w = h.weights_seen_by(s(0));
    assert_eq!(
        w,
        WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"])
    );
    let qs = WeightedMajorityQuorumSystem::with_threshold_total(w, cfg.initial_total());
    assert!(qs.is_quorum_slice(&[s(0), s(1), s(2)]));
    assert_eq!(qs.min_quorum_size(), 3);

    // "two other invocations made by s6 and s7 after t1 … cannot be
    // executed in the restricted pairwise weight reassignment due to
    // RP-Integrity violation."
    let out = h.transfer_and_wait(s(5), s(0), Ratio::dec("0.1")).unwrap();
    assert!(!out.is_effective(), "s6 is at 0.75; 0.75 ≯ 0.1 + 0.7");
    let out = h.transfer_and_wait(s(6), s(1), Ratio::dec("0.4")).unwrap();
    assert!(!out.is_effective(), "s7 is at 1; 1 ≯ 0.4 + 0.7");

    // Weights unchanged by the null transfers; the audit is clean.
    h.settle();
    assert_eq!(
        h.weights_seen_by(s(6)),
        WeightMap::dec(&["1.25", "1.25", "1.25", "0.75", "0.75", "0.75", "1"])
    );
    let report = audit_transfers(&cfg, &h.all_completed());
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.effective, 3);
    assert_eq!(report.null, 2);
}

/// §V.C: the flexibility discussion instance — smallest quorum is 5 with
/// the two heavy servers slow, and the floor blocks meaningful shuffles.
#[test]
fn section5c_flexibility_limits() {
    let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
    let floor = rp_floor(w.total(), 7, 2);
    assert_eq!(floor, Ratio::dec("0.7"));

    // "the size of the smallest quorum is five" when s1, s2 are slow.
    let qs = WeightedMajorityQuorumSystem::new(w.clone());
    let dead: std::collections::BTreeSet<ServerId> = [s(0), s(1)].into();
    assert_eq!(awr::quorum::smallest_quorum_avoiding(&qs, &dead), Some(5));

    // "servers cannot form smaller quorums by reassigning weights": every
    // live donor has at most 0.1 of headroom above the floor, and any
    // redistribution among the five 0.8-servers keeps their total at 4 —
    // the smallest live quorum stays 5 whatever they do.
    let live_total: Ratio = (2..7).map(|i| w.weight(s(i))).sum();
    assert_eq!(live_total, Ratio::integer(4));
    assert!(live_total > w.total().half()); // they can still form quorums…
                                            // …but four of them max out at 4 − 0.7-floor'ed fifth < 3.5:
    let best_four = live_total - floor; // leave the weakest at the floor
    assert!(best_four < w.total().half() + Ratio::dec("0.2")); // 3.3 < 3.5 ✓
    assert!(best_four < Ratio::dec("3.5"));
}

/// The Fig. 1 weights as a (valid) starting configuration, and the paper's
/// §V.C weights rejected for f = 3 (floor climbs to 7/8).
#[test]
fn config_validation_follows_floor() {
    let w = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
    assert!(RpConfig::new(2, w.clone()).is_ok());
    let w2 = WeightMap::dec(&["1.6", "1.4", "0.8", "0.8", "0.8", "0.8", "0.8"]);
    assert!(RpConfig::new(3, w2).is_err());
}
