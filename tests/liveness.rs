//! RP-Liveness (Definition 5) under failure injection: every invocation by
//! a correct process completes with up to `f` crashes, arbitrary crash
//! timing, and adversarial message delays.

use awr::core::{audit_transfers, RpConfig, RpHarness};
use awr::sim::{Time, UniformLatency, MILLI};
use awr::types::{Ratio, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn s(i: u32) -> ServerId {
    ServerId(i)
}

#[test]
fn transfers_complete_with_f_crashes_at_random_times() {
    for seed in 0..12 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RpConfig::uniform(7, 2);
        let mut h = RpHarness::build(cfg.clone(), 1, seed, UniformLatency::new(1_000, 70_000));
        // Crash two random distinct servers at random virtual times, but
        // never the two we will use as transfer endpoints.
        let mut victims: Vec<u32> = (2..7).collect();
        for _ in 0..2 {
            let k = rng.random_range(0..victims.len());
            let v = victims.swap_remove(k);
            let at = Time(rng.random_range(0..200) * MILLI);
            h.world.schedule_crash(h.server_actor(s(v)), at);
        }
        // The surviving donor/receiver pair keeps completing transfers.
        for round in 0..5 {
            let out = h
                .transfer_and_wait(s(0), s(1), Ratio::dec("0.02"))
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
            assert!(out.is_effective());
        }
        let report = audit_transfers(&cfg, &h.all_completed());
        assert!(report.is_clean(), "seed {seed}");
    }
}

#[test]
fn read_changes_completes_with_f_crashes() {
    for seed in 0..12 {
        let cfg = RpConfig::uniform(7, 2);
        let mut h = RpHarness::build(cfg, 1, 50 + seed, UniformLatency::new(1_000, 70_000));
        h.crash_server(s(5));
        h.crash_server(s(6));
        h.transfer_and_wait(s(0), s(1), Ratio::dec("0.1")).unwrap();
        let rc = h.read_changes(0, s(1)).expect("read_changes liveness");
        assert_eq!(rc.weight(), Ratio::dec("1.1"), "seed {seed}");
    }
}

#[test]
fn f_plus_one_crashes_do_break_liveness() {
    // Sanity-check the boundary: with f + 1 crashes the protocol *should*
    // stall (the model's assumption is at most f crash faults).
    let cfg = RpConfig::uniform(7, 2);
    let mut h = RpHarness::build(cfg, 1, 99, UniformLatency::new(1_000, 70_000));
    h.crash_server(s(4));
    h.crash_server(s(5));
    h.crash_server(s(6));
    // n − f − 1 = 4 acks needed, only 3 other live servers remain.
    let result = h.transfer_and_wait(s(0), s(1), Ratio::dec("0.1"));
    assert!(
        result.is_err(),
        "transfer should not complete with f+1 crashes"
    );
}

#[test]
fn concurrent_transfers_all_complete_under_heavy_reordering() {
    for seed in 0..10 {
        let cfg = RpConfig::uniform(7, 2);
        // Huge delay spread = heavy reordering.
        let mut h = RpHarness::build(cfg.clone(), 1, seed, UniformLatency::new(1, 500 * MILLI));
        for from in 0..7u32 {
            let to = (from + 1) % 7;
            h.transfer_async(s(from), s(to), Ratio::dec("0.1")).unwrap();
        }
        h.settle();
        let completed = h.all_completed();
        assert_eq!(completed.len(), 7, "seed {seed}: all invocations complete");
        let report = audit_transfers(&cfg, &completed);
        assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
        // A full ring of 0.1-transfers returns everyone to weight 1.
        for i in 0..7 {
            assert_eq!(h.weights_seen_by(s(i)).weight(s(i)), Ratio::ONE);
        }
    }
}

#[test]
fn protocol_outcome_identical_fifo_vs_reordering() {
    // Safety is schedule-independent: the same transfer workload lands on
    // the same final weights whether links are FIFO or wildly reordering.
    use awr::sim::{FifoLinks, UniformLatency};
    let run = |fifo: bool, seed: u64| {
        let cfg = RpConfig::uniform(7, 2);
        let mut h = if fifo {
            RpHarness::build(
                cfg.clone(),
                1,
                seed,
                FifoLinks::new(UniformLatency::new(1, 200 * MILLI)),
            )
        } else {
            RpHarness::build(cfg.clone(), 1, seed, UniformLatency::new(1, 200 * MILLI))
        };
        for i in 0..7u32 {
            h.transfer_async(s(i), s((i + 2) % 7), Ratio::dec("0.1"))
                .unwrap();
        }
        h.settle();
        let report = audit_transfers(&cfg, &h.all_completed());
        assert!(report.is_clean());
        (h.weights_seen_by(s(0)), h.all_completed().len())
    };
    for seed in 0..5 {
        let (w_fifo, n_fifo) = run(true, seed);
        let (w_wild, n_wild) = run(false, seed);
        assert_eq!(n_fifo, n_wild, "seed {seed}");
        // All transfers in this ring are effective under both schedules, so
        // the final weights agree (everyone back to 1).
        assert_eq!(w_fifo, w_wild, "seed {seed}");
    }
}
