//! Integration tests contrasting the paper's protocol with the two
//! baselines (epoch-based [11] and consensus-based related work) — the
//! E8/E9 shapes as assertions.

use awr::consensus::{CwrNode, SlotMsg, WeightCmd};
use awr::core::{RpConfig, RpHarness};
use awr::epoch::{EpochEngine, EpochRequest};
use awr::sim::{shared_latency, ActorId, SlowActors, Time, UniformLatency, World, MILLI, SECOND};
use awr::types::{Ratio, ServerId, WeightMap};

#[test]
fn epochless_applies_faster_than_epoch_based() {
    // Epoch-based: a request submitted right after a boundary waits almost
    // a full epoch.
    let mut e = EpochEngine::new(WeightMap::uniform(7, Ratio::ONE), 2);
    e.submit(EpochRequest {
        server: ServerId(0),
        delta: Ratio::dec("-0.1"),
        submitted: Time(10 * MILLI),
    });
    e.end_epoch(Time(SECOND));
    let epoch_delay_ms = e.mean_apply_delay_ms();
    assert!(epoch_delay_ms > 900.0);

    // Epochless: one RB round trip on the same-scale network.
    let cfg = RpConfig::uniform(7, 2);
    let mut h = RpHarness::build(cfg, 1, 8, UniformLatency::new(10 * MILLI, 60 * MILLI));
    let t0 = h.world.now();
    h.transfer_and_wait(ServerId(0), ServerId(1), Ratio::dec("0.1"))
        .unwrap();
    let protocol_delay_ms = (h.world.now() - t0) as f64 / 1e6;
    assert!(
        protocol_delay_ms < epoch_delay_ms / 2.0,
        "epochless {protocol_delay_ms} ms should beat epoch-based {epoch_delay_ms} ms"
    );
}

#[test]
fn epoch_based_can_leak_total_weight_but_protocol_cannot() {
    // Epoch-based: a decrease whose matching increase misses the boundary.
    let mut e = EpochEngine::new(WeightMap::uniform(7, Ratio::ONE), 2);
    e.submit(EpochRequest {
        server: ServerId(0),
        delta: Ratio::dec("-0.2"),
        submitted: Time(0),
    });
    e.end_epoch(Time(SECOND)); // increase not yet submitted
    e.submit(EpochRequest {
        server: ServerId(1),
        delta: Ratio::dec("0.2"),
        submitted: Time(SECOND + MILLI),
    });
    e.end_epoch(Time(2 * SECOND)); // no release in this epoch → rejected
    assert!(e.weights().total() < Ratio::integer(7), "leak expected");

    // The pairwise protocol conserves the total by construction.
    let cfg = RpConfig::uniform(7, 2);
    let mut h = RpHarness::build(cfg, 1, 9, UniformLatency::new(1_000, 40_000));
    for i in 0..6u32 {
        let _ = h.transfer_and_wait(ServerId(i), ServerId(i + 1), Ratio::dec("0.05"));
    }
    h.settle();
    assert_eq!(h.weights_seen_by(ServerId(0)).total(), Ratio::integer(7));
}

#[test]
fn consensus_baseline_stalls_with_leader_but_protocol_does_not() {
    // Consensus-based: delay the leader 1000× and submit one command.
    let (handle, model) = shared_latency(SlowActors::new(
        UniformLatency::new(MILLI, 20 * MILLI),
        vec![],
        1_000,
    ));
    let mut w: World<SlotMsg> = World::new(10, model);
    for i in 0..5 {
        w.add_actor(CwrNode::new(
            5,
            2,
            WeightMap::uniform(5, Ratio::ONE),
            i == 0,
        ));
    }
    handle.lock().set_slow(vec![ActorId(0)]);
    w.with_actor_ctx::<CwrNode, _>(ActorId(0), |n, ctx| {
        n.submit(
            WeightCmd {
                from: ServerId(1),
                to: ServerId(0),
                delta: Ratio::dec("0.1"),
            },
            ctx,
        );
    });
    w.run_for(2 * SECOND);
    assert_eq!(
        w.actor::<CwrNode>(ActorId(1)).unwrap().applied_count(),
        0,
        "consensus must stall while the leader is delayed"
    );

    // Restricted pairwise under the *same* adversary: transfers between
    // non-delayed servers complete.
    let (handle, model) = shared_latency(SlowActors::new(
        UniformLatency::new(MILLI, 20 * MILLI),
        vec![],
        1_000,
    ));
    let cfg = RpConfig::uniform(5, 1);
    let mut h = RpHarness::build(cfg, 1, 10, model);
    handle.lock().set_slow(vec![ActorId(0)]);
    let out = h
        .transfer_and_wait(ServerId(1), ServerId(2), Ratio::dec("0.1"))
        .expect("leaderless transfer must complete");
    assert!(out.is_effective());
}
