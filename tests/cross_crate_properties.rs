//! Property-based integration tests spanning crates: random workloads
//! through the full protocol stack, audited by the executable specs.

use awr::core::{audit_transfers, RpConfig, RpHarness};
use awr::epoch::{EpochEngine, EpochRequest};
use awr::monitor::{first_infeasible_step, plan_transfers, WeightPolicy};
use awr::sim::{Time, UniformLatency};
use awr::types::{Ratio, ServerId, WeightMap};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of transfer requests, on any schedule, audits clean:
    /// RP-Integrity, P-Integrity, C1, conservation (Theorem 4).
    #[test]
    fn random_transfer_workloads_audit_clean(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0u32..7, 0u32..7, 1i128..6), 1..15),
    ) {
        let cfg = RpConfig::uniform(7, 2);
        let mut h = RpHarness::build(cfg.clone(), 1, seed, UniformLatency::new(1_000, 60_000));
        for (from, to, d) in ops {
            if from == to { continue; }
            let _ = h.transfer_and_wait(
                ServerId(from), ServerId(to), Ratio::new(d, 20));
        }
        h.settle();
        let report = audit_transfers(&cfg, &h.all_completed());
        prop_assert!(report.is_clean(), "{:?}", report.violations);
        // All servers converge to the same weight map.
        let w0 = h.weights_seen_by(ServerId(0));
        for i in 1..7 {
            prop_assert_eq!(&h.weights_seen_by(ServerId(i)), &w0);
        }
        prop_assert_eq!(w0.total(), Ratio::integer(7));
    }

    /// The policy → planner pipeline always emits feasible, total-preserving
    /// plans for valid latency inputs.
    #[test]
    fn planner_always_feasible(
        lat in proptest::collection::vec(1.0f64..500.0, 7),
    ) {
        let cfg = RpConfig::uniform(7, 2);
        let targets = WeightPolicy::default().targets(&cfg, &lat);
        prop_assert_eq!(targets.total(), cfg.initial_total());
        prop_assert!(awr::quorum::rp_integrity_holds(&targets, cfg.floor()));
        let plan = plan_transfers(&cfg.initial_weights, &targets);
        prop_assert!(first_infeasible_step(&cfg, &cfg.initial_weights, &plan).is_none());
        // Applying the plan reaches the target exactly.
        let mut w = cfg.initial_weights.clone();
        for t in &plan {
            w.add(t.from, -t.delta);
            w.add(t.to, t.delta);
        }
        prop_assert_eq!(w, targets);
    }

    /// The epoch engine never violates Property 1 and never grows the total,
    /// whatever the request mix.
    #[test]
    fn epoch_engine_safe_under_random_demand(
        reqs in proptest::collection::vec((0u32..7, -5i128..6), 0..40),
    ) {
        let mut e = EpochEngine::new(WeightMap::uniform(7, Ratio::ONE), 2);
        let mut t = 0u64;
        for (server, d) in reqs {
            if d == 0 { continue; }
            e.submit(EpochRequest {
                server: ServerId(server),
                delta: Ratio::new(d, 10),
                submitted: Time(t),
            });
            t += 50;
            if t.is_multiple_of(250) {
                e.end_epoch(Time(t));
            }
        }
        e.end_epoch(Time(t + 1000));
        prop_assert!(awr::quorum::integrity_holds(e.weights(), 2));
        prop_assert!(e.weights().total() <= Ratio::integer(7));
        prop_assert!(awr::quorum::rp_integrity_holds(
            e.weights(),
            awr::quorum::rp_floor(Ratio::integer(7), 7, 2)
        ));
    }
}

/// Deterministic cross-check: executing a planner plan through the real
/// protocol lands exactly on the target weights.
#[test]
fn planner_plan_executes_on_protocol() {
    let cfg = RpConfig::uniform(7, 2);
    let target = WeightMap::dec(&["1.25", "1.2", "1.15", "0.8", "0.8", "0.8", "1"]);
    let plan = plan_transfers(&cfg.initial_weights, &target);
    let mut h = RpHarness::build(cfg.clone(), 1, 77, UniformLatency::new(1_000, 50_000));
    for t in &plan {
        let out = h.transfer_and_wait(t.from, t.to, t.delta).unwrap();
        assert!(out.is_effective(), "planned transfer must be feasible");
    }
    h.settle();
    assert_eq!(h.weights_seen_by(ServerId(0)), target);
    let report = audit_transfers(&cfg, &h.all_completed());
    assert!(report.is_clean());
}
