//! Seed-for-seed equivalence of the two event-queue implementations:
//! the hierarchical [`TimingWheel`] (the default) and the
//! [`BinaryHeapScheduler`] reference.
//!
//! The simulator's determinism contract is that events pop in ascending
//! `(at, seq)` order — time first, insertion sequence as the tie-break.
//! Any scheduler honoring that total order replays a seeded scenario
//! *identically*: same trace records in the same order, same metrics,
//! same protocol outcomes, same virtual end time. These tests pin that
//! claim three ways:
//!
//! * whole-system replays under keyed open-loop load (uniform and Zipf
//!   keys), under a crash/restart fault campaign with retries, and on a
//!   bandwidth-constrained topology where transmission times make the
//!   schedule irregular;
//! * a property test feeding both schedulers the same random batches of
//!   pushes, pops, and mid-queue removals — with deliberate
//!   same-timestamp ties — and asserting the popped sequences match
//!   element for element.

use awr::core::RpConfig;
use awr::sim::{
    constrained_uplink, ActorId, ArrivalSpec, BinaryHeapScheduler, FaultPlan, Scheduler,
    SchedulerKind, Time, TimingWheel, TraceRecord, UniformLatency, MILLI, SECOND,
};
use awr::storage::workload::{run_mixed_workload, KeyDistribution, WorkloadSpec};
use awr::storage::{
    CheckpointCadence, DynOptions, OpenLoopHarness, OpenLoopSpec, RetryPolicy, StorageHarness,
};
use proptest::prelude::*;

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    trace: Vec<TraceRecord>,
    events: u64,
    sent: u64,
    bytes: u64,
    timers: u64,
    end_ns: u64,
}

fn fingerprint_of(world: &awr::sim::World<awr::storage::DynMsg<u64>>) -> Fingerprint {
    let m = world.metrics();
    Fingerprint {
        trace: world
            .trace()
            .expect("trace enabled")
            .records()
            .cloned()
            .collect(),
        events: m.events_processed,
        sent: m.messages_sent,
        bytes: m.bytes_sent,
        timers: m.timers_fired,
        end_ns: m.last_time.nanos(),
    }
}

/// Open-loop keyed load on a plain latency network.
fn openloop_run(kind: SchedulerKind, dist: KeyDistribution, seed: u64) -> (Fingerprint, u64, u64) {
    let mut h = OpenLoopHarness::build(
        RpConfig::uniform(3, 1),
        &OpenLoopSpec {
            n_clients: 6,
            n_objects: 5,
            dist,
            write_fraction: 0.4,
            arrivals: ArrivalSpec::Poisson {
                rate_per_sec: 2_000.0,
            },
            duration: SECOND / 4,
            per_object: false,
            seed,
        },
        UniformLatency::new(100_000, 900_000),
        DynOptions::default(),
    );
    h.inner.world.set_scheduler(kind);
    h.inner.world.enable_trace(1 << 20);
    h.run(None, 50 * MILLI);
    let s = h.stats();
    assert_eq!(s.completed, s.generated);
    (fingerprint_of(&h.inner.world), s.generated, s.arrival_hash)
}

#[test]
fn openloop_replays_identically_uniform_and_zipf() {
    for dist in [
        KeyDistribution::Uniform,
        KeyDistribution::Zipfian { exponent: 1.0 },
    ] {
        for seed in [3u64, 17] {
            let wheel = openloop_run(SchedulerKind::TimingWheel, dist, seed);
            let heap = openloop_run(SchedulerKind::BinaryHeap, dist, seed);
            assert_eq!(wheel, heap, "{dist:?} seed {seed} diverged");
        }
    }
}

#[test]
fn crash_restart_campaign_replays_identically() {
    let run = |kind: SchedulerKind, seed: u64| {
        let cfg = RpConfig::uniform(5, 1);
        let servers: Vec<_> = (0..5).map(ActorId).collect();
        let mut h: StorageHarness<u64> = StorageHarness::build_durable(
            cfg,
            3,
            seed,
            UniformLatency::new(1_000, 50_000),
            DynOptions {
                checkpoint: Some(CheckpointCadence::default()),
                retry: Some(RetryPolicy::default()),
                ..DynOptions::default()
            },
        );
        h.world.set_scheduler(kind);
        h.world.enable_trace(1 << 20);
        let plan = FaultPlan::random(seed, &servers, Time(3_000_000), 700_000, 250_000);
        assert!(!plan.is_empty());
        h.install_fault_plan(&plan);
        let stats = run_mixed_workload(&mut h, 3, &WorkloadSpec::default(), seed);
        h.settle();
        (
            fingerprint_of(&h.world),
            stats.reads,
            stats.writes,
            h.total_restarts(),
        )
    };
    for seed in 40..43u64 {
        let wheel = run(SchedulerKind::TimingWheel, seed);
        let heap = run(SchedulerKind::BinaryHeap, seed);
        assert!(wheel.3 > 0, "seed {seed}: campaign never restarted anyone");
        assert_eq!(wheel, heap, "seed {seed} diverged under faults");
    }
}

#[test]
fn bandwidth_constrained_topology_replays_identically() {
    // Shared uplinks charge per-byte transmission time, so the schedule
    // is shaped by message sizes — the hardest case for an event queue
    // because delivery times are highly irregular and collide often.
    let run = |kind: SchedulerKind| {
        let n_clients = 4;
        let mut h = OpenLoopHarness::build(
            RpConfig::uniform(3, 1),
            &OpenLoopSpec {
                n_clients,
                n_objects: 3,
                dist: KeyDistribution::Zipfian { exponent: 1.0 },
                write_fraction: 0.5,
                arrivals: ArrivalSpec::Bursty {
                    on_rate_per_sec: 3_000.0,
                    on_ns: 20 * MILLI,
                    off_ns: 60 * MILLI,
                },
                duration: SECOND / 4,
                per_object: false,
                seed: 0xB0BA,
            },
            constrained_uplink(3 + n_clients, 500_000),
            DynOptions::default(),
        );
        h.inner.world.set_scheduler(kind);
        h.inner.world.enable_trace(1 << 20);
        h.seed_changes(50);
        h.run(None, 50 * MILLI);
        let s = h.stats();
        assert_eq!(s.completed, s.generated);
        assert!(s.max_backlog > 0, "constrained run never queued");
        (fingerprint_of(&h.inner.world), s.arrival_hash)
    };
    assert_eq!(
        run(SchedulerKind::TimingWheel),
        run(SchedulerKind::BinaryHeap)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of push / pop / take_seq keep the two
    /// schedulers in lock-step, including same-timestamp ties (which must
    /// pop in insertion order) and far-future jumps (which exercise the
    /// wheel's higher levels and overflow).
    #[test]
    fn wheel_matches_heap_on_random_batches(
        ops in proptest::collection::vec((0u32..10, 0u32..8, 0u64..1_000_000_000), 1..300),
    ) {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut heap: BinaryHeapScheduler<u64> = BinaryHeapScheduler::new();
        let mut seq = 0u64;
        // Pushes never precede the last pop — the contract the World
        // upholds (virtual time is monotone).
        let mut floor = 0u64;
        let mut pending: Vec<u64> = Vec::new();
        for (op, shape, raw) in ops {
            match op {
                // Push (biased: most ops grow the queue).
                0..=5 => {
                    let at = match shape {
                        // Exact tie with the current floor.
                        0 | 1 => floor,
                        // Cluster tightly (forces same-slot collisions).
                        2 | 3 => floor.saturating_add(raw % 128),
                        // Near future (level 0-2).
                        4 | 5 => floor.saturating_add(raw),
                        // Far future (high levels).
                        6 => floor.saturating_add(raw << 30),
                        // Beyond the wheel horizon (overflow heap).
                        _ => floor.saturating_add(raw << 50),
                    };
                    wheel.push(Time(at), seq, seq);
                    heap.push(Time(at), seq, seq);
                    pending.push(seq);
                    seq += 1;
                }
                // Pop.
                6 | 7 => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(&a, &b);
                    if let Some((at, s, _)) = a {
                        floor = at.0;
                        pending.retain(|&x| x != s);
                    }
                }
                // Remove a random pending event from the middle.
                8 => {
                    if !pending.is_empty() {
                        let victim = pending[(raw as usize) % pending.len()];
                        let a = wheel.take_seq(victim);
                        let b = heap.take_seq(victim);
                        prop_assert_eq!(&a, &b);
                        prop_assert!(a.is_some());
                        pending.retain(|&x| x != victim);
                    }
                }
                // Peek.
                _ => {
                    prop_assert_eq!(wheel.next_key(), heap.next_key());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain: the full remaining order must agree.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }
}
