//! Integration tests for the impossibility reductions (Theorems 1–2) and
//! the naive-implementation counterexample, across sizes, seeds, and real
//! threads.

use awr::core::naive::run_theorem1_race;
use awr::core::reduction::{
    reduction_initial_weights, run_alg1, run_alg1_threads, run_alg2, run_alg2_threads,
};
use awr::quorum::integrity_holds;

#[test]
fn theorem1_consensus_across_sizes_and_seeds() {
    for &(n, f) in &[(3usize, 1usize), (4, 1), (5, 2), (7, 3), (10, 4), (13, 6)] {
        for seed in 0..30 {
            let run = run_alg1(n, f, (0..n as u64).collect(), seed);
            assert!(run.agreement(), "n={n} f={f} seed={seed}");
            assert!(run.validity(), "n={n} f={f} seed={seed}");
        }
    }
}

#[test]
fn theorem2_consensus_and_winner_in_s_minus_f() {
    for &(n, f) in &[(4usize, 1usize), (7, 2), (9, 3), (11, 4)] {
        for seed in 0..30 {
            let run = run_alg2(n, f, (0..n as u64).collect(), seed);
            assert!(run.agreement(), "n={n} f={f} seed={seed}");
            assert!(run.validity(), "n={n} f={f} seed={seed}");
            // Algorithm 2's decided value is proposed by a member of S \ F.
            assert!(
                *run.decided().unwrap() >= f as u64,
                "n={n} f={f} seed={seed}: winner inside F"
            );
        }
    }
}

#[test]
fn reductions_agree_on_real_threads() {
    for _ in 0..5 {
        let r1 = run_alg1_threads(5, 2, vec!["a", "b", "c", "d", "e"]);
        assert!(r1.agreement() && r1.validity());
        let r2 = run_alg2_threads(7, 2, (0..7).collect::<Vec<u32>>());
        assert!(r2.agreement() && r2.validity());
        assert!(*r2.decided().unwrap() >= 2);
    }
}

#[test]
fn schedules_change_winners_but_never_agreement() {
    let mut winners = std::collections::BTreeSet::new();
    for seed in 0..60 {
        let run = run_alg1(6, 2, (0..6).collect::<Vec<u32>>(), seed);
        assert!(run.agreement());
        winners.insert(*run.decided().unwrap());
    }
    assert!(
        winners.len() > 1,
        "the adversarial scheduler should be able to elect different winners"
    );
}

#[test]
fn reduction_weights_are_the_papers_construction() {
    // W_F = (n−1)/2 and W_{S\F} = (n+1)/2, summing to n, with Integrity.
    for &(n, f) in &[(4usize, 1usize), (7, 2), (10, 4)] {
        let w = reduction_initial_weights(n, f);
        let wf: awr::types::Ratio = (0..f)
            .map(|i| w.weight(awr::types::ServerId(i as u32)))
            .sum();
        assert_eq!(wf, awr::types::Ratio::new(n as i128 - 1, 2));
        assert_eq!(w.total(), awr::types::Ratio::integer(n as i64));
        assert!(integrity_holds(&w, f));
    }
}

#[test]
fn naive_async_implementation_violates_integrity() {
    // Corollary 1, operationally: every concurrent schedule of the naive
    // protocol ends with the f heaviest servers at ≥ half the total.
    for &(n, f) in &[(4usize, 1usize), (7, 3)] {
        for seed in 0..15 {
            let (weights, ok) = run_theorem1_race(n, f, seed);
            assert!(!ok, "n={n} f={f} seed={seed}: unexpectedly safe");
            assert!(!integrity_holds(&weights, f));
        }
    }
}
