//! Per-key checker properties: the partitioned keyed checker must agree
//! with the whole-history Wing&Gong checker wherever both are defined.
//!
//! * On a **single-key** history the two are the same predicate: one
//!   partition, one register.
//! * On a **mixed** history the keyed verdict must equal the conjunction of
//!   whole-history verdicts over the per-object sub-histories — objects are
//!   independent registers, so that conjunction *is* the atomicity
//!   condition for a keyed store.
//!
//! Histories here are generated abstractly (arbitrary overlapping
//! intervals, repeated values, reads of `None`), not through the protocol,
//! so both linearizable and non-linearizable inputs are exercised.

use awr::sim::Time;
use awr::storage::{check_linearizable, check_linearizable_keyed, HistOp, History, OpKind};
use awr::types::ObjectId;
use proptest::prelude::*;

/// Raw generated op: (client, obj, kind selector, value, invoke, duration).
/// Kind: 0 = write(value+1), 1 = read(Some(value+1)), 2 = read(None).
type RawOp = (u32, u64, u32, u64, u64, u64);

fn hist_from(raw: &[RawOp]) -> History<u64> {
    let mut h = History::new();
    for &(client, obj, kind, value, invoke, dur) in raw {
        let kind = match kind {
            0 => OpKind::Write(value + 1),
            1 => OpKind::Read(Some(value + 1)),
            _ => OpKind::Read(None),
        };
        h.record(HistOp {
            client: client as usize,
            obj: ObjectId(obj),
            kind,
            invoke: Time(invoke),
            response: Time(invoke + dur),
        });
    }
    h
}

/// The reference predicate: run the *whole-history* checker on each
/// per-object sub-history independently.
fn per_object_whole_checker_verdict(h: &History<u64>) -> bool {
    h.partition_by_object()
        .values()
        .all(|part| check_linearizable(part).is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-key histories: the keyed checker and the whole-history
    /// checker are the same predicate.
    #[test]
    fn keyed_agrees_with_whole_on_single_key(
        raw in proptest::collection::vec(
            (0u32..4, 0u64..1, 0u32..3, 0u64..4, 0u64..2_000, 1u64..400),
            1..16,
        ),
    ) {
        let h = hist_from(&raw);
        prop_assert_eq!(
            check_linearizable_keyed(&h).is_ok(),
            check_linearizable(&h).is_ok(),
            "keyed and whole verdicts diverged on a single-key history"
        );
    }

    /// Mixed histories: the keyed verdict equals the conjunction of
    /// whole-history verdicts over the per-object partitions, and any
    /// failure names an object whose partition really fails.
    #[test]
    fn keyed_agrees_with_whole_on_mixed_histories(
        raw in proptest::collection::vec(
            (0u32..4, 0u64..3, 0u32..3, 0u64..4, 0u64..2_000, 1u64..400),
            1..20,
        ),
    ) {
        let h = hist_from(&raw);
        let keyed = check_linearizable_keyed(&h);
        prop_assert_eq!(
            keyed.is_ok(),
            per_object_whole_checker_verdict(&h),
            "keyed verdict diverged from the per-object conjunction"
        );
        if let Err(e) = keyed {
            let part = &h.partition_by_object()[&e.obj];
            prop_assert!(
                check_linearizable(part).is_err(),
                "keyed checker blamed {} but its partition passes alone",
                e.obj
            );
        }
    }

    /// Padding a history with operations on *other* objects never changes
    /// an object's verdict: per-key checking is local to the key.
    #[test]
    fn foreign_key_traffic_never_changes_a_verdict(
        raw in proptest::collection::vec(
            (0u32..4, 0u64..1, 0u32..3, 0u64..4, 0u64..1_500, 1u64..400),
            1..12,
        ),
        noise in proptest::collection::vec(
            (0u32..4, 1u64..3, 0u32..3, 0u64..4, 0u64..1_500, 1u64..400),
            0..8,
        ),
    ) {
        let base = hist_from(&raw);
        let mut padded_raw = raw.clone();
        padded_raw.extend(noise);
        let padded = hist_from(&padded_raw);
        let base_verdict = check_linearizable(&base).is_ok();
        let padded_keyed = check_linearizable_keyed(&padded);
        let obj0_ok = !matches!(&padded_keyed, Err(e) if e.obj == ObjectId(0));
        prop_assert_eq!(
            obj0_ok, base_verdict,
            "foreign-object traffic changed object o0's verdict"
        );
    }
}
