//! Observability integration tests: tracing protocol phases and metric
//! accounting through the facade.

use awr::core::{RpConfig, RpHarness, RpServer};
use awr::sim::{TraceKind, UniformLatency};
use awr::types::{Ratio, ServerId};

#[test]
fn trace_shows_protocol_phases() {
    let cfg = RpConfig::uniform(5, 1);
    let mut h = RpHarness::build(cfg, 1, 3, UniformLatency::new(1_000, 40_000));
    h.world.enable_trace(10_000);
    h.transfer_and_wait(ServerId(1), ServerId(0), Ratio::dec("0.2"))
        .unwrap();
    h.settle();
    let trace = h.world.trace().expect("trace enabled");
    // The transfer produced RB deliveries ("T") and acknowledgments.
    assert!(trace.deliveries_of("T") >= 4, "{}", trace.render());
    assert!(trace.deliveries_of("T_Ack") >= 3);
    // Rendering is line-oriented and names actors.
    let rendered = trace.render();
    assert!(rendered.contains("→"));
    assert!(rendered.lines().count() as u64 <= trace.total_recorded());
}

#[test]
fn trace_records_crashes_and_drops() {
    let cfg = RpConfig::uniform(5, 1);
    let mut h = RpHarness::build(cfg, 1, 4, UniformLatency::new(1_000, 40_000));
    h.world.enable_trace(10_000);
    h.transfer_async(ServerId(1), ServerId(0), Ratio::dec("0.1"))
        .unwrap();
    h.world
        .schedule_crash(h.server_actor(ServerId(4)), awr::sim::Time(1));
    h.settle();
    let trace = h.world.trace().unwrap();
    let crashed = trace
        .records()
        .any(|r| matches!(r.kind, TraceKind::Crash { .. }));
    assert!(crashed, "crash must be traced");
    let dropped = trace
        .records()
        .any(|r| matches!(r.kind, TraceKind::DropCrashed { .. }));
    assert!(
        dropped,
        "messages to the crashed server must be traced as drops"
    );
}

#[test]
fn metrics_account_for_each_message_kind() {
    let cfg = RpConfig::uniform(7, 2);
    let mut h = RpHarness::build(cfg, 1, 5, UniformLatency::new(1_000, 40_000));
    h.transfer_and_wait(ServerId(1), ServerId(0), Ratio::dec("0.1"))
        .unwrap();
    h.read_changes(0, ServerId(0)).unwrap();
    h.settle();
    let m = h.world.metrics();
    assert!(m.sent_of_kind("T") > 0);
    assert!(m.sent_of_kind("T_Ack") > 0);
    assert_eq!(m.sent_of_kind("RC"), 7); // one per server
    assert!(m.sent_of_kind("RC_Ack") >= 3);
    // One initial WC per server; WC_Miss renegotiation may add resends.
    assert!(m.sent_of_kind("WC") >= 7);
    assert!(m.sent_of_kind("WC_Ack") >= 5); // n − f acks needed
    assert!(m.messages_delivered <= m.messages_sent);
    assert!(m.summary().contains("delivered"));
    // Byte accounting covers every kind that was sent.
    assert!(m.bytes_sent > 0);
    assert!(m.summary().contains("bytes="));
    for (kind, count) in &m.sent_by_kind {
        assert!(
            m.bytes_of_kind(kind) >= *count,
            "kind {kind} sent {count} messages but {} bytes",
            m.bytes_of_kind(kind)
        );
    }
    let total: u64 = m.bytes_by_kind.values().sum();
    assert_eq!(total, m.bytes_sent, "per-kind bytes must sum to the total");
}

#[test]
fn per_server_complete_log_matches_core_log() {
    let cfg = RpConfig::uniform(5, 1);
    let mut h = RpHarness::build(cfg, 1, 6, UniformLatency::new(1_000, 40_000));
    h.transfer_and_wait(ServerId(2), ServerId(0), Ratio::dec("0.1"))
        .unwrap();
    // Null transfer also lands in the complete log.
    h.transfer_and_wait(ServerId(2), ServerId(0), Ratio::dec("0.9"))
        .unwrap();
    h.settle();
    let srv = h
        .world
        .actor::<RpServer>(h.server_actor(ServerId(2)))
        .unwrap();
    assert_eq!(srv.complete_log.len(), 2);
    assert!(srv.complete_log[0].is_effective());
    assert!(!srv.complete_log[1].is_effective());
    assert_eq!(srv.completed().len(), 2);
}
